"""Integration tests: Monte-Carlo (EINSim-style) miscorrection profiles + BEER.

These tests mirror the paper's own correctness methodology (Section 6.1):
simulate many ECC words per test pattern with data-retention errors, build the
measured miscorrection profile, and confirm that BEER recovers the original
ECC function from it.
"""

import numpy as np
import pytest

from repro.exceptions import ProfileError
from repro.dram import CellType
from repro.ecc import codes_equivalent, example_7_4_code, random_hamming_code
from repro.core import (
    BeerSolver,
    charged_patterns,
    expected_miscorrection_profile,
    monte_carlo_miscorrection_profile,
    one_charged_patterns,
)


class TestMonteCarloProfileValidity:
    def test_validation(self):
        code = example_7_4_code()
        patterns = one_charged_patterns(4)
        with pytest.raises(ProfileError):
            monte_carlo_miscorrection_profile(code, patterns, 0.1, 0)
        with pytest.raises(ProfileError):
            monte_carlo_miscorrection_profile(code, patterns, 1.5, 10)

    def test_zero_error_rate_measures_empty_profile(self):
        code = example_7_4_code()
        profile = monte_carlo_miscorrection_profile(
            code, one_charged_patterns(4), 0.0, 100, rng=np.random.default_rng(0)
        )
        assert profile.total_miscorrections == 0

    def test_measured_profile_is_subset_of_analytic(self):
        # Every observed miscorrection must be analytically possible,
        # regardless of how few words are simulated.
        rng = np.random.default_rng(1)
        for seed in range(4):
            code = random_hamming_code(8, rng=np.random.default_rng(seed))
            patterns = list(charged_patterns(8, [1, 2]))
            measured = monte_carlo_miscorrection_profile(
                code, patterns, bit_error_rate=0.3, words_per_pattern=50, rng=rng
            )
            analytic = expected_miscorrection_profile(code, patterns)
            for pattern in patterns:
                assert measured.miscorrections(pattern) <= analytic.miscorrections(pattern)

    def test_measured_profile_converges_to_analytic(self):
        code = random_hamming_code(8, rng=np.random.default_rng(7))
        patterns = list(charged_patterns(8, [1, 2]))
        measured = monte_carlo_miscorrection_profile(
            code,
            patterns,
            bit_error_rate=0.5,
            words_per_pattern=4000,
            rng=np.random.default_rng(3),
        )
        analytic = expected_miscorrection_profile(code, patterns)
        assert measured == analytic

    def test_anti_cell_measurement_matches_anti_cell_analytic(self):
        code = random_hamming_code(6, rng=np.random.default_rng(9))
        patterns = list(charged_patterns(6, [1, 2]))
        measured = monte_carlo_miscorrection_profile(
            code,
            patterns,
            bit_error_rate=0.5,
            words_per_pattern=4000,
            cell_type=CellType.ANTI_CELL,
            rng=np.random.default_rng(4),
        )
        analytic = expected_miscorrection_profile(code, patterns, CellType.ANTI_CELL)
        assert measured == analytic

    def test_low_error_rate_observes_fewer_miscorrections(self):
        code = random_hamming_code(8, rng=np.random.default_rng(11))
        patterns = list(charged_patterns(8, [1]))
        sparse = monte_carlo_miscorrection_profile(
            code, patterns, bit_error_rate=0.02, words_per_pattern=200,
            rng=np.random.default_rng(5),
        )
        dense = monte_carlo_miscorrection_profile(
            code, patterns, bit_error_rate=0.5, words_per_pattern=200,
            rng=np.random.default_rng(5),
        )
        assert sparse.total_miscorrections <= dense.total_miscorrections


class TestPaperSection61Methodology:
    """Simulate → measure profile → solve → compare against the original code."""

    @pytest.mark.parametrize("num_data_bits,seed", [(4, 0), (8, 1), (11, 2), (16, 3)])
    def test_beer_recovers_codes_from_simulated_profiles(self, num_data_bits, seed):
        code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
        patterns = list(charged_patterns(num_data_bits, [1, 2]))
        measured = monte_carlo_miscorrection_profile(
            code,
            patterns,
            bit_error_rate=0.5,
            words_per_pattern=3000,
            rng=np.random.default_rng(seed + 100),
        )
        solution = BeerSolver(num_data_bits).solve(measured)
        assert solution.unique
        assert codes_equivalent(solution.code, code)

    def test_full_length_code_recovered_from_one_charged_simulation(self):
        code = random_hamming_code(11, rng=np.random.default_rng(42))
        measured = monte_carlo_miscorrection_profile(
            code,
            one_charged_patterns(11),
            bit_error_rate=0.5,
            words_per_pattern=3000,
            rng=np.random.default_rng(43),
        )
        solution = BeerSolver(11).solve(measured)
        assert solution.unique
        assert codes_equivalent(solution.code, code)

    def test_insufficient_sampling_never_yields_a_wrong_unique_answer(self):
        # With too few words the profile may be incomplete, in which case BEER
        # either still finds the right code or (more likely) finds no code or
        # several codes — but it must never settle uniquely on a wrong one
        # whose profile would contradict the observations we did make.
        code = random_hamming_code(8, rng=np.random.default_rng(21))
        patterns = list(charged_patterns(8, [1, 2]))
        measured = monte_carlo_miscorrection_profile(
            code, patterns, bit_error_rate=0.2, words_per_pattern=30,
            rng=np.random.default_rng(22),
        )
        solution = BeerSolver(8).solve(measured, max_solutions=5)
        for candidate in solution.codes:
            assert BeerSolver.verify(candidate, measured)
