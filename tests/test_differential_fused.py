"""Differential test suite: the ``fused`` backend vs the staged backends.

The fused pipeline (:mod:`repro.einsim.fused`) reimplements an entire
Monte-Carlo round — inject, decode, classify — over packed representations,
so every statistic it produces is checked for bit-exact equality against the
``reference`` oracle (and the ``packed`` backend) across all code families,
all injector types and all three packed mask representations, at the
simulator, profile and campaign layers.  The packed injector protocol is
additionally checked mask-for-mask and RNG-state-for-RNG-state against the
unpacked draw it replaces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import CellType
from repro.ecc import get_family
from repro.einsim import (
    BurstErrorInjector,
    CompositeInjector,
    DataRetentionInjector,
    EinsimSimulator,
    FaultModelInjector,
    FixedErrorCountInjector,
    MixedCellRetentionInjector,
    PackedErrorBatch,
    PerBitBernoulliInjector,
    RowStripeInjector,
    UniformRandomInjector,
    bulk_syndrome_values,
    get_kernel,
    packed_error_batch,
)
from repro.einsim.engine import bulk_decode_outcomes
from repro.gf2.bitpack import pack_bool_rows
from repro.gf2.native import NATIVE_AVAILABLE
from repro.core import MonteCarloCampaign, charged_patterns
from repro.core.profile import monte_carlo_observation_counts

#: (family, construct args) spanning every decode policy: SEC correction,
#: SEC-DED correction+detection, detect-only single parity (r=1, the tiny-r
#: syndrome path), correcting 3-repetition, and detect-only 2-repetition.
FAMILY_CASES = [
    ("sec-hamming", (16,)),
    ("secded-extended-hamming", (16,)),
    ("parity-detect", (16,)),
    ("repetition", (8,)),
    ("repetition", (8, 8)),
]

FAMILY_IDS = ["sec", "secded", "parity", "rep3", "rep2-detect"]


def _construct(family, args):
    return get_family(family).construct(*args)


class _StuckHighModel:
    """Minimal fault model driving the FaultModelInjector fallback path."""

    def corrupt(self, bits, rng):
        corrupted = bits.copy()
        corrupted[:, 0] = 1
        corrupted[rng.random(bits.shape) < 0.02] ^= 1
        return corrupted


def _injectors(code):
    """One injector per packed representation and per protocol branch."""
    n = code.codeword_length
    wide = list(range(0, n, 1))  # > SUBSET_WIDTH_LIMIT for every family size
    return [
        UniformRandomInjector(0.02),
        DataRetentionInjector(0.05),
        DataRetentionInjector(0.05, CellType.ANTI_CELL),
        FixedErrorCountInjector(2),
        FixedErrorCountInjector(0),
        FixedErrorCountInjector(
            3, candidate_positions=[0, 2, 5, 7, 9], per_bit_probability=0.5
        ),
        FixedErrorCountInjector(
            2, candidate_positions=wide, per_bit_probability=0.75
        ),
        PerBitBernoulliInjector(np.linspace(0.0, 0.1, n)),
        MixedCellRetentionInjector(0.05),
        BurstErrorInjector(0.3, 4, 0.7),
        RowStripeInjector(0.2, 2, 1, 0.5),
        FaultModelInjector(_StuckHighModel()),
        CompositeInjector(
            [UniformRandomInjector(0.01), FixedErrorCountInjector(1)]
        ),
    ]


def _assert_results_equal(expected, actual):
    assert expected.dataword == actual.dataword
    assert expected.num_words == actual.num_words
    assert np.array_equal(
        expected.post_correction_error_counts,
        actual.post_correction_error_counts,
    )
    assert np.array_equal(
        expected.pre_correction_error_counts,
        actual.pre_correction_error_counts,
    )
    assert expected.uncorrectable_words == actual.uncorrectable_words
    assert expected.miscorrected_words == actual.miscorrected_words
    assert expected.miscorrection_positions == actual.miscorrection_positions
    assert expected.detected_words == actual.detected_words


class TestSimulatorDifferential:
    """Every family x every injector, all three backends, field-exact."""

    @pytest.mark.parametrize("family,args", FAMILY_CASES, ids=FAMILY_IDS)
    def test_all_backends_bit_identical(self, family, args):
        code = _construct(family, args)
        dataword = np.arange(code.num_data_bits) % 2
        for index, injector in enumerate(_injectors(code)):
            results = {
                backend: EinsimSimulator(
                    code, seed=100 + index, backend=backend
                ).simulate(dataword, 531, injector, batch_size=128)
                for backend in ("reference", "packed", "fused")
            }
            _assert_results_equal(results["reference"], results["packed"])
            _assert_results_equal(results["reference"], results["fused"])

    @settings(max_examples=20, deadline=None)
    @given(
        case=st.sampled_from(list(range(len(FAMILY_CASES)))),
        ber=st.floats(min_value=0.0, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_words=st.integers(min_value=1, max_value=300),
        batch_size=st.integers(min_value=1, max_value=97),
    )
    def test_fuzzed_uniform_rounds(self, case, ber, seed, num_words, batch_size):
        family, args = FAMILY_CASES[case]
        code = _construct(family, args)
        dataword = np.ones(code.num_data_bits, dtype=np.uint8)
        injector = UniformRandomInjector(ber)
        reference = EinsimSimulator(code, seed=seed, backend="reference").simulate(
            dataword, num_words, injector, batch_size=batch_size
        )
        fused = EinsimSimulator(code, seed=seed, backend="fused").simulate(
            dataword, num_words, injector, batch_size=batch_size
        )
        _assert_results_equal(reference, fused)

    @settings(max_examples=20, deadline=None)
    @given(
        case=st.sampled_from(list(range(len(FAMILY_CASES)))),
        num_errors=st.integers(min_value=0, max_value=4),
        probability=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_words=st.integers(min_value=1, max_value=300),
    )
    def test_fuzzed_fixed_count_rounds(
        self, case, num_errors, probability, seed, num_words
    ):
        family, args = FAMILY_CASES[case]
        code = _construct(family, args)
        candidates = list(range(0, code.codeword_length, 2))
        num_errors = min(num_errors, len(candidates))
        dataword = np.zeros(code.num_data_bits, dtype=np.uint8)
        injector = FixedErrorCountInjector(
            num_errors,
            candidate_positions=candidates,
            per_bit_probability=probability,
        )
        reference = EinsimSimulator(code, seed=seed, backend="reference").simulate(
            dataword, num_words, injector, batch_size=128
        )
        fused = EinsimSimulator(code, seed=seed, backend="fused").simulate(
            dataword, num_words, injector, batch_size=128
        )
        _assert_results_equal(reference, fused)


class TestInjectorPackedProtocol:
    """``error_mask_packed`` draws the same masks from the same RNG stream."""

    @pytest.mark.parametrize("family,args", FAMILY_CASES, ids=FAMILY_IDS)
    def test_masks_and_rng_state_match_unpacked(self, family, args):
        code = _construct(family, args)
        dataword = np.arange(code.num_data_bits) % 2
        codeword = code.encode(dataword).to_numpy()
        for index, injector in enumerate(_injectors(code)):
            rng_unpacked = np.random.default_rng(10_000 + index)
            rng_packed = np.random.default_rng(10_000 + index)
            stored = np.tile(codeword, (97, 1))
            mask = np.asarray(injector.error_mask(stored, rng_unpacked), bool)
            batch = packed_error_batch(injector, codeword, 97, rng_packed)
            assert batch.num_words == 97
            assert batch.num_bits == code.codeword_length
            assert np.array_equal(batch.to_lanes(), pack_bool_rows(mask))
            # Identical post-draw states: the packed protocol consumed the
            # stream exactly as the unpacked draw did, so the *next* batch
            # also matches — chunked runs stay aligned forever.
            assert (
                rng_unpacked.bit_generator.state
                == rng_packed.bit_generator.state
            )

    def test_subset_representation_used_for_small_candidate_lists(self):
        code = _construct("sec-hamming", (16,))
        codeword = code.encode(np.zeros(16, dtype=np.uint8)).to_numpy()
        small = FixedErrorCountInjector(
            2, candidate_positions=[1, 3, 5, 8], per_bit_probability=0.5
        )
        wide = FixedErrorCountInjector(
            2,
            candidate_positions=list(range(code.codeword_length)),
            per_bit_probability=0.5,
        )
        rng = np.random.default_rng(0)
        assert packed_error_batch(small, codeword, 8, rng).kind == "subset"
        assert packed_error_batch(wide, codeword, 8, rng).kind == "sparse"
        assert (
            packed_error_batch(UniformRandomInjector(0.1), codeword, 8, rng).kind
            == "lanes"
        )

    def test_fallback_used_without_packed_protocol(self):
        injector = FaultModelInjector(_StuckHighModel())
        assert not hasattr(injector, "error_mask_packed")
        code = _construct("sec-hamming", (16,))
        codeword = code.encode(np.zeros(16, dtype=np.uint8)).to_numpy()
        batch = packed_error_batch(injector, codeword, 5, np.random.default_rng(1))
        assert batch.kind == "lanes"


class TestSegmentedClassification:
    """classify_segments over a partition equals per-segment classify."""

    @pytest.mark.parametrize("family,args", FAMILY_CASES, ids=FAMILY_IDS)
    def test_segment_partition_matches_whole(self, family, args):
        code = _construct(family, args)
        kernel = get_kernel(code)
        rng = np.random.default_rng(7)
        mask = rng.random((60, code.codeword_length)) < 0.08
        batch = PackedErrorBatch.from_bool_mask(mask)
        whole = kernel.classify(batch)
        parts = kernel.classify_segments(batch, (13, 0, 27, 20))
        assert [p.num_words for p in parts] == [13, 0, 27, 20]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        assert np.array_equal(
            merged.pre_correction_error_counts, whole.pre_correction_error_counts
        )
        assert np.array_equal(
            merged.post_correction_error_counts,
            whole.post_correction_error_counts,
        )
        assert merged.uncorrectable_words == whole.uncorrectable_words
        assert merged.miscorrected_words == whole.miscorrected_words
        assert merged.detected_words == whole.detected_words
        assert merged.miscorrection_positions == whole.miscorrection_positions

    def test_bad_partition_rejected(self):
        code = _construct("sec-hamming", (16,))
        kernel = get_kernel(code)
        batch = PackedErrorBatch.from_bool_mask(
            np.zeros((4, code.codeword_length), dtype=bool)
        )
        with pytest.raises(Exception):
            kernel.classify_segments(batch, (3, 3))


class TestProfileDifferential:
    """monte_carlo_observation_counts: grouped fused pass vs staged loop."""

    @pytest.mark.parametrize("family,args", FAMILY_CASES, ids=FAMILY_IDS)
    @pytest.mark.parametrize(
        "cell_type", [CellType.TRUE_CELL, CellType.ANTI_CELL], ids=["true", "anti"]
    )
    def test_observation_counts_bit_identical(self, family, args, cell_type):
        code = _construct(family, args)
        patterns = list(charged_patterns(code.num_data_bits, [1, 2]))
        results = {}
        for backend in ("reference", "packed", "fused"):
            results[backend] = monte_carlo_observation_counts(
                code,
                patterns,
                0.1,
                400,
                cell_type=cell_type,
                rng=np.random.default_rng(21),
                backend=backend,
            )
        reference = results["reference"]
        for backend in ("packed", "fused"):
            other = results[backend]
            assert reference.patterns == other.patterns
            for pattern in reference.patterns:
                assert np.array_equal(
                    reference.counts_for(pattern), other.counts_for(pattern)
                )
                assert reference.words_observed(pattern) == other.words_observed(
                    pattern
                )
                assert reference.due_words_observed(
                    pattern
                ) == other.due_words_observed(pattern)
            assert reference.to_profile() == other.to_profile()


class TestCampaignDifferential:
    """Chunked campaigns: fused cross-chunk batching vs per-chunk reference."""

    @pytest.mark.parametrize("family,args", FAMILY_CASES, ids=FAMILY_IDS)
    def test_chunked_campaign_bit_identical(self, family, args):
        code = _construct(family, args)
        k = code.num_data_bits
        datawords = [np.zeros(k, np.uint8), np.ones(k, np.uint8), np.arange(k) % 2]
        injector = DataRetentionInjector(0.04)
        # 700 does not divide 1801: the final short chunk is exercised too.
        reference = MonteCarloCampaign(
            code, chunk_size=700, backend="reference", base_seed=5
        ).simulate_many(datawords, injector, 1801)
        fused = MonteCarloCampaign(
            code, chunk_size=700, backend="fused", base_seed=5
        ).simulate_many(datawords, injector, 1801)
        for expected, actual in zip(reference, fused):
            _assert_results_equal(expected, actual)

    def test_mixed_injector_flushes_between_representations(self):
        # Consecutive chunks with incompatible packed representations force
        # the fused runner's mid-stream flush; results must be unaffected.
        code = _construct("secded-extended-hamming", (16,))
        k = code.num_data_bits
        injector = CompositeInjector(
            [FixedErrorCountInjector(1), UniformRandomInjector(0.01)]
        )
        reference = MonteCarloCampaign(
            code, chunk_size=300, backend="reference", base_seed=9
        ).simulate_many([np.ones(k, np.uint8)], injector, 1000)
        fused = MonteCarloCampaign(
            code, chunk_size=300, backend="fused", base_seed=9
        ).simulate_many([np.ones(k, np.uint8)], injector, 1000)
        _assert_results_equal(reference[0], fused[0])

    @settings(max_examples=10, deadline=None)
    @given(
        chunk_size=st.integers(min_value=1, max_value=600),
        num_words=st.integers(min_value=1, max_value=900),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_fuzzed_detect_only_campaign(self, chunk_size, num_words, seed):
        code = _construct("parity-detect", (16,))
        dataword = np.ones(code.num_data_bits, np.uint8)
        injector = UniformRandomInjector(0.03)
        reference = MonteCarloCampaign(
            code, chunk_size=chunk_size, backend="reference", base_seed=seed
        ).simulate(dataword, injector, num_words)
        fused = MonteCarloCampaign(
            code, chunk_size=chunk_size, backend="fused", base_seed=seed
        ).simulate(dataword, injector, num_words)
        _assert_results_equal(reference, fused)


class TestStagedKernelRegressions:
    """Satellite fixes in the staged kernels, pinned down."""

    def test_decode_skips_copy_when_nothing_flips(self):
        # Detect-only family: no action ever flips a bit, so the decode may
        # return its input uncopied.
        code = _construct("parity-detect", (16,))
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2, size=(50, code.codeword_length)).astype(np.uint8)
        corrected, due = bulk_decode_outcomes(code, words, "packed")
        assert corrected is words
        reference_corrected, reference_due = bulk_decode_outcomes(
            code, words, "reference"
        )
        assert np.array_equal(corrected, reference_corrected)
        assert np.array_equal(due, reference_due)

    def test_decode_still_copies_when_correction_happens(self):
        code = _construct("sec-hamming", (16,))
        words = np.zeros((4, code.codeword_length), dtype=np.uint8)
        words[1, 3] = 1  # single-bit error: the decoder must flip it back
        corrected, _ = bulk_decode_outcomes(code, words, "packed")
        assert corrected is not words
        assert words[1, 3] == 1  # input untouched
        assert corrected[1, 3] == 0

    @pytest.mark.parametrize(
        "family,args",
        [
            ("parity-detect", (16,)),  # r=1, detect-only
            ("repetition", (2, 2)),  # r=2, detect-only
            ("repetition", (1,)),  # r=2, correcting
            ("repetition", (8, 8)),  # r=8 control: the fold-table route
        ],
        ids=["parity-r1", "rep2-r2", "rep3-r2", "rep2-r8-fold"],
    )
    def test_tiny_r_syndrome_path_matches_reference(self, family, args):
        code = _construct(family, args)
        assert (code.num_parity_bits <= 2) == (args != (8, 8))
        rng = np.random.default_rng(11)
        words = rng.integers(0, 2, size=(83, code.codeword_length)).astype(np.uint8)
        reference = bulk_syndrome_values(code, words, "reference")
        packed = bulk_syndrome_values(code, words, "packed")
        assert np.array_equal(reference, packed)


class TestNativeTier:
    """The optional numba fold tier (runs only where numba is installed)."""

    def test_native_flag_consistent(self):
        from repro.gf2.native import native_available

        if not NATIVE_AVAILABLE:
            assert not native_available()

    @pytest.mark.skipif(not NATIVE_AVAILABLE, reason="numba not installed")
    def test_native_fold_matches_numpy(self):
        from repro.gf2.bitpack import fold_bytes
        from repro.gf2.native import fold_classify_native

        code = _construct("secded-extended-hamming", (32,))
        table = code.syndrome_fold_table()
        rng = np.random.default_rng(13)
        mask_bytes = rng.integers(
            0, 256, size=(4096, table.shape[0]), dtype=np.uint8
        )
        assert np.array_equal(
            fold_classify_native(mask_bytes, table),
            fold_bytes(table, mask_bytes),
        )

    @pytest.mark.skipif(not NATIVE_AVAILABLE, reason="numba not installed")
    def test_fused_backend_bit_identical_under_native(self):
        code = _construct("secded-extended-hamming", (32,))
        dataword = np.arange(32) % 2
        injector = UniformRandomInjector(0.01)
        reference = EinsimSimulator(code, seed=1, backend="reference").simulate(
            dataword, 3000, injector
        )
        fused = EinsimSimulator(code, seed=1, backend="fused").simulate(
            dataword, 3000, injector
        )
        _assert_results_equal(reference, fused)
