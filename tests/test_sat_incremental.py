"""Tests for the incremental CDCL core: persistence, assumptions, hygiene.

Covers the three regression bugs fixed alongside the incremental rewrite
(duplicate-literal clauses, the conflict-budget boundary, bootstrap
determinism lives in test_einsim) plus differential tests of the incremental
solver against brute force and against the historical one-shot oracle.
"""

import itertools

import numpy as np
import pytest

from repro.exceptions import BudgetExhaustedError, SolverError
from repro.sat import (
    CNF,
    CDCLSolver,
    encode_at_most_one,
    iterate_models,
    simplify_literals,
    solve,
)


def brute_force_models(formula: CNF, variables):
    """Reference projected-model enumeration by exhaustive search."""
    models = set()
    for bits in itertools.product([False, True], repeat=formula.num_variables):
        if formula.evaluate(list(bits)):
            models.add(tuple((v, bits[v - 1]) for v in variables))
    return models


def pigeonhole(num_pigeons: int, num_holes: int) -> CNF:
    formula = CNF()
    variables = {
        (pigeon, hole): formula.new_variable()
        for pigeon in range(num_pigeons)
        for hole in range(num_holes)
    }
    for pigeon in range(num_pigeons):
        formula.add_clause([variables[(pigeon, hole)] for hole in range(num_holes)])
    for hole in range(num_holes):
        encode_at_most_one(
            formula, [variables[(pigeon, hole)] for pigeon in range(num_pigeons)]
        )
    return formula


def random_formula(seed: int, with_dirty_clauses: bool = False) -> CNF:
    """A random small CNF; optionally with duplicate literals and tautologies."""
    rng = np.random.default_rng(seed)
    num_variables = int(rng.integers(3, 9))
    num_clauses = int(rng.integers(1, 4 * num_variables))
    formula = CNF(num_variables)
    for _ in range(num_clauses):
        width = int(rng.integers(1, 4))
        variables = rng.choice(num_variables, size=width, replace=False) + 1
        signs = rng.integers(0, 2, size=width) * 2 - 1
        clause = list(variables * signs)
        if with_dirty_clauses and rng.random() < 0.3:
            clause.append(clause[0])  # duplicate literal
        if with_dirty_clauses and rng.random() < 0.15:
            pivot = int(rng.integers(1, num_variables + 1))
            clause.extend([pivot, -pivot])  # tautology
        formula.add_clause(clause)
    return formula


class TestClauseHygiene:
    """Regression tests for CNF.add_clause clause hygiene."""

    def test_duplicate_literal_clause_propagates_as_unit(self):
        # Historically [x, x] put both watch slots on the same literal and
        # was misreported as a conflict instead of propagating x.
        formula = CNF()
        formula.add_clause([1, 1])
        result = CDCLSolver(formula).solve()
        assert result.satisfiable
        assert result.value(1) is True

    def test_duplicate_literals_are_deduped_in_storage(self):
        formula = CNF()
        formula.add_clause([2, 2, -3, 2])
        assert formula.clauses == [(2, -3)]

    def test_tautology_is_dropped(self):
        formula = CNF()
        formula.add_clause([1, -1])
        assert formula.num_clauses == 0
        # The formula is unconstrained: both polarities of 1 are models.
        assert len(list(iterate_models(formula, over_variables=[1]))) == 2

    def test_tautology_with_extra_literals_is_dropped(self):
        formula = CNF()
        formula.add_clause([4, 2, -4])
        assert formula.num_clauses == 0

    def test_duplicate_then_negation_still_unsat(self):
        formula = CNF()
        formula.add_clause([1, 1])
        formula.add_clause([-1, -1])
        assert not CDCLSolver(formula).solve().satisfiable

    def test_simplify_literals_helper(self):
        assert simplify_literals([1, 1, 2]) == (1, 2)
        assert simplify_literals([1, -1]) is None
        with pytest.raises(SolverError):
            simplify_literals([])
        with pytest.raises(SolverError):
            simplify_literals([0])

    def test_solver_add_clause_applies_hygiene(self):
        solver = CDCLSolver(CNF(2))
        solver.add_clause([1, -1])  # tautology: no constraint
        solver.add_clause([2, 2])  # unit after dedup
        result = solver.solve()
        assert result.satisfiable
        assert result.value(2) is True


class TestConflictBudget:
    """Regression tests for the dedicated indeterminate outcome."""

    def test_budget_exhaustion_is_distinguishable(self):
        formula = pigeonhole(7, 6)
        with pytest.raises(BudgetExhaustedError) as excinfo:
            CDCLSolver(formula, max_conflicts=1).solve()
        assert isinstance(excinfo.value, SolverError)  # backwards compatible
        assert excinfo.value.budget == 1
        assert excinfo.value.conflicts == 1

    def test_budget_boundary_is_exact(self):
        # Measure the conflicts a full solve needs, then check that exactly
        # that budget suffices and one less is indeterminate.
        formula = pigeonhole(4, 3)
        reference = CDCLSolver(formula).solve()
        assert not reference.satisfiable
        needed = reference.conflicts
        assert needed > 1

        exact = CDCLSolver(formula, max_conflicts=needed).solve()
        assert not exact.satisfiable
        assert exact.conflicts == needed

        with pytest.raises(BudgetExhaustedError) as excinfo:
            CDCLSolver(formula, max_conflicts=needed - 1).solve()
        assert excinfo.value.conflicts == needed - 1

    def test_budget_never_exceeded_on_raise(self):
        for budget in (1, 2, 5, 20):
            solver = CDCLSolver(pigeonhole(6, 5), max_conflicts=budget)
            with pytest.raises(BudgetExhaustedError) as excinfo:
                solver.solve()
            assert excinfo.value.conflicts <= budget

    def test_solver_usable_after_budget_exhaustion(self):
        solver = CDCLSolver(pigeonhole(5, 4), max_conflicts=1)
        with pytest.raises(BudgetExhaustedError):
            solver.solve()
        result = solver.solve(max_conflicts=None)
        assert not result.satisfiable

    def test_per_call_budget_overrides_constructor(self):
        solver = CDCLSolver(pigeonhole(5, 4), max_conflicts=1)
        assert not solver.solve(max_conflicts=None).satisfiable


class TestIncrementalSolving:
    def test_solver_persists_across_added_clauses(self):
        formula = CNF()
        formula.add_clause([1, 2])
        solver = CDCLSolver(formula)
        assert solver.solve().satisfiable
        solver.add_clause([-1])
        result = solver.solve()
        assert result.satisfiable
        assert result.value(2) is True
        solver.add_clause([-2])
        assert not solver.solve().satisfiable
        # UNSAT is permanent once derived at the root level.
        assert not solver.solve().satisfiable
        assert solver.stats().solve_calls == 4

    def test_assumptions_do_not_persist(self):
        formula = CNF()
        formula.add_clause([1, 2])
        solver = CDCLSolver(formula)
        assert not solver.solve(assumptions=[-1, -2]).satisfiable
        assert solver.solve().satisfiable

    def test_contradictory_assumptions_unsat(self):
        formula = CNF(2)
        formula.add_clause([1, 2])
        assert not CDCLSolver(formula).solve(assumptions=[1, -1]).satisfiable

    def test_assumptions_on_fresh_variables(self):
        formula = CNF()
        formula.add_clause([1, 2])
        solver = CDCLSolver(formula)
        result = solver.solve(assumptions=[5])
        assert result.satisfiable
        assert result.value(5) is True

    def test_statistics_accumulate_across_calls(self):
        solver = CDCLSolver(pigeonhole(4, 3))
        first = solver.solve()
        second = solver.solve()
        stats = solver.stats()
        assert stats.solve_calls == 2
        assert stats.conflicts >= first.conflicts
        assert second.conflicts == 0  # permanently UNSAT: no new work
        payload = stats.as_dict()
        assert payload["variables"] == 12
        assert set(payload) >= {"conflicts", "decisions", "propagations", "restarts"}

    @pytest.mark.parametrize("seed", range(25))
    def test_assumption_solving_matches_unit_oracle(self, seed):
        formula = random_formula(seed, with_dirty_clauses=True)
        rng = np.random.default_rng(seed + 1)
        solver = CDCLSolver(formula)
        for _ in range(4):
            width = int(rng.integers(0, formula.num_variables + 1))
            variables = rng.choice(formula.num_variables, size=width, replace=False) + 1
            signs = rng.integers(0, 2, size=width) * 2 - 1
            assumptions = list(variables * signs)
            oracle = formula.copy()
            for literal in assumptions:
                oracle.add_unit(int(literal))
            expected = CDCLSolver(oracle).solve().satisfiable
            assert solver.solve(assumptions=assumptions).satisfiable == expected


class TestEnumerationDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_incremental_enumeration_matches_brute_force(self, seed):
        formula = random_formula(seed, with_dirty_clauses=True)
        rng = np.random.default_rng(seed)
        width = int(rng.integers(1, formula.num_variables + 1))
        projection = sorted(rng.choice(formula.num_variables, size=width, replace=False) + 1)
        expected = brute_force_models(formula, projection)
        observed = {
            tuple(sorted(model.items()))
            for model in iterate_models(formula, over_variables=projection)
        }
        assert observed == expected

    @pytest.mark.parametrize("seed", range(20))
    def test_incremental_matches_one_shot_oracle(self, seed):
        formula = random_formula(seed)
        incremental = {
            tuple(sorted(model.items())) for model in iterate_models(formula)
        }
        one_shot = {
            tuple(sorted(model.items()))
            for model in iterate_models(formula, incremental=False)
        }
        assert incremental == one_shot

    def test_enumeration_with_explicit_solver_reports_stats(self):
        formula = CNF()
        formula.add_clause([1, 2, 3])
        solver = CDCLSolver(formula)
        models = list(iterate_models(formula, over_variables=[1, 2, 3], solver=solver))
        assert len(models) == 7
        assert solver.stats().solve_calls == 8  # 7 models + final UNSAT

    def test_one_shot_oracle_rejects_solver_argument(self):
        formula = CNF(1)
        formula.add_clause([1])
        with pytest.raises(SolverError):
            list(iterate_models(formula, incremental=False, solver=CDCLSolver(formula)))

    def test_one_shot_oracle_does_not_mutate_formula(self):
        formula = CNF()
        formula.add_clause([1, 2])
        before = formula.num_clauses
        list(iterate_models(formula, incremental=False))
        assert formula.num_clauses == before


class TestRestartsAndReduceDB:
    def test_luby_restarts_fire_on_hard_instances(self):
        formula = pigeonhole(7, 6)
        solver = CDCLSolver(formula)
        solver._restart_base = 8  # shrink the interval to exercise restarts
        result = solver.solve()
        assert not result.satisfiable
        assert solver.stats().restarts > 0

    def test_reduce_db_deletes_learned_clauses_and_stays_correct(self):
        formula = pigeonhole(7, 6)
        solver = CDCLSolver(formula)
        solver._restart_base = 8  # restarts return to level 0 where reduceDB runs
        solver._max_learnt = 16
        result = solver.solve()
        assert not result.satisfiable
        stats = solver.stats()
        assert stats.deleted > 0
        assert stats.learnt_total > stats.deleted

    def test_reduce_db_preserves_enumeration_semantics(self):
        formula = random_formula(7)
        solver = CDCLSolver(formula)
        solver._max_learnt = 2
        observed = {
            tuple(sorted(model.items()))
            for model in iterate_models(formula, solver=solver)
        }
        expected = brute_force_models(formula, range(1, formula.num_variables + 1))
        assert observed == expected


class TestModuleLevelSolve:
    def test_solve_with_assumptions_does_not_copy(self):
        formula = CNF()
        formula.add_clause([1, 2])
        before = formula.num_clauses
        result = solve(formula, assumptions=[-1])
        assert result.satisfiable and result.value(2) is True
        assert formula.num_clauses == before

    def test_mismatched_solver_rejected(self):
        formula = CNF()
        formula.add_clause([1, 2])
        with pytest.raises(SolverError):
            list(iterate_models(formula, over_variables=[1, 2], solver=CDCLSolver()))
