"""Unit tests for code equivalence, canonical forms, and enumeration."""

import math

import numpy as np
import pytest

from repro.ecc import (
    SystematicLinearCode,
    canonical_parity_columns,
    codes_equivalent,
    design_space_size,
    enumerate_sec_codes,
    example_7_4_code,
    hamming_code,
    random_hamming_code,
)
from repro.ecc.codespace import canonical_form, deduplicate_equivalent


def permute_rows(code, permutation):
    """Return the code obtained by relabelling parity rows with ``permutation``."""
    new_columns = []
    for column in code.parity_column_ints:
        value = 0
        for source_row, target_row in enumerate(permutation):
            if (column >> source_row) & 1:
                value |= 1 << target_row
        new_columns.append(value)
    return SystematicLinearCode.from_parity_columns(new_columns, code.num_parity_bits)


class TestCanonicalForm:
    def test_canonical_form_is_invariant_under_row_permutations(self):
        code = example_7_4_code()
        base = canonical_form(code)
        for permutation in [(1, 0, 2), (2, 1, 0), (1, 2, 0), (2, 0, 1)]:
            assert canonical_form(permute_rows(code, permutation)) == base

    def test_canonical_form_distinguishes_different_codes(self):
        first = hamming_code(4, num_parity_bits=4)
        second = random_hamming_code(4, num_parity_bits=4, rng=np.random.default_rng(5))
        if first.parity_column_ints == second.parity_column_ints:
            pytest.skip("random draw matched the deterministic code")
        # They may still be equivalent by chance; verify via brute force that
        # the canonical forms agree exactly when an equivalence exists.
        assert (canonical_form(first) == canonical_form(second)) == codes_equivalent(
            first, second
        )

    def test_canonical_columns_idempotent(self):
        columns = (0b110, 0b011, 0b111)
        canonical = canonical_parity_columns(columns, 3)
        assert canonical_parity_columns(canonical, 3) == canonical

    def test_canonical_is_lexicographically_minimal(self):
        columns = (0b110, 0b101)
        canonical = canonical_parity_columns(columns, 3)
        assert canonical <= columns


class TestEquivalence:
    def test_row_permuted_codes_are_equivalent(self):
        code = example_7_4_code()
        assert codes_equivalent(code, permute_rows(code, (2, 0, 1)))

    def test_codes_with_different_dimensions_not_equivalent(self):
        assert not codes_equivalent(hamming_code(4), hamming_code(5))
        assert not codes_equivalent(
            hamming_code(4, num_parity_bits=3), hamming_code(4, num_parity_bits=4)
        )

    def test_inequivalent_codes_detected(self):
        # {011, 101, 110} vs {011, 101, 111} cannot be related by a row
        # permutation because the multiset of column weights differs.
        first = SystematicLinearCode.from_parity_columns([0b011, 0b101, 0b110], 3)
        second = SystematicLinearCode.from_parity_columns([0b011, 0b101, 0b111], 3)
        assert not codes_equivalent(first, second)

    def test_deduplicate_equivalent(self):
        code = example_7_4_code()
        variants = [code, permute_rows(code, (1, 0, 2)), permute_rows(code, (2, 1, 0))]
        unique = deduplicate_equivalent(variants + [hamming_code(4)])
        assert len(unique) == len(deduplicate_equivalent([code, hamming_code(4)]))


class TestEnumeration:
    def test_enumeration_count_matches_design_space(self):
        codes = list(enumerate_sec_codes(2, 3))
        assert len(codes) == design_space_size(2, 3) == math.perm(4, 2)

    def test_enumeration_yields_valid_codes(self):
        for code in enumerate_sec_codes(3, 3):
            assert code.is_single_error_correcting()

    def test_enumeration_up_to_equivalence_is_smaller(self):
        full = list(enumerate_sec_codes(3, 3))
        reduced = list(enumerate_sec_codes(3, 3, up_to_equivalence=True))
        assert len(reduced) < len(full)
        # Every full enumeration member must be equivalent to some reduced one.
        for code in full[:10]:
            assert any(codes_equivalent(code, rep) for rep in reduced)

    def test_design_space_size_formula(self):
        assert design_space_size(4, 3) == 24
        assert design_space_size(11, 4) == math.factorial(11)
        assert design_space_size(12, 4) == 0
