"""Tests for the top-level public API surface."""

import numpy as np
import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_readme_quickstart_round_trip(self):
        # The exact flow shown in README.md / the package docstring.
        secret = repro.random_hamming_code(16, rng=np.random.default_rng(0))
        profile = repro.expected_miscorrection_profile(
            secret, list(repro.charged_patterns(16, [1, 2]))
        )
        solution = repro.BeerSolver(16).solve(profile)
        assert solution.unique
        assert repro.codes_equivalent(solution.code, secret)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.cli
        import repro.core
        import repro.dram
        import repro.ecc
        import repro.einsim
        import repro.gf2
        import repro.sat

        assert repro.analysis and repro.cli and repro.core and repro.dram
        assert repro.ecc and repro.einsim and repro.gf2 and repro.sat

    def test_console_script_entry_point_callable(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--help"])

    def test_key_types_are_exposed(self):
        assert repro.BeerSolver is not None
        assert repro.SatBeerSolver is not None
        assert repro.BeepProfiler is not None
        assert repro.SimulatedDramChip is not None
        assert repro.EinsimSimulator is not None
        assert repro.CDCLSolver is not None
