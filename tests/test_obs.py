"""Unit tests for the observability package: tracer, schema, report, export."""

import json

import pytest

from repro.obs import (
    NOOP_SPAN,
    TRACE_VERSION,
    TRACER,
    ProgressLine,
    Tracer,
    chrome_trace,
    format_summary_text,
    per_process_totals,
    read_trace,
    slowest_spans,
    summarize_events,
    summarize_trace,
    validate_event,
    validate_events,
    validate_trace_file,
    write_chrome_trace,
)


@pytest.fixture(autouse=True)
def _disable_global_tracer():
    """Never leak an enabled process-wide tracer across tests."""
    yield
    TRACER.disable()


class TestDisabledTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        assert tracer.enabled is False

    def test_span_is_shared_noop(self):
        tracer = Tracer()
        span = tracer.span("anything", attr=1)
        assert span is NOOP_SPAN
        with span as inner:
            inner.set_attr("more", 2)  # must be silently ignored
        assert span.span_id is None

    def test_counters_and_events_are_dropped(self):
        tracer = Tracer()
        tracer.add("c", 5)
        tracer.gauge("g", 1.0)
        tracer.event("m", {"x": 1})
        assert tracer.counters_snapshot() == {}
        assert tracer.counter_totals() == {}

    def test_flush_without_sink_returns_none(self):
        tracer = Tracer()
        tracer.enable(sink_path=None)
        assert tracer.flush() is None


class TestEnabledTracer:
    def test_span_nesting_records_parents(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "t.jsonl")
        tracer.enable(sink_path=path)
        with tracer.span("outer", kind="x") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        tracer.flush()
        events = read_trace(path)
        spans = {e["name"]: e for e in events if e["type"] == "span"}
        # inner closes (and records) first; outer is a root span
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["outer"]["attrs"] == {"kind": "x"}
        assert spans["inner"]["dur"] >= 0

    def test_exception_inside_span_is_recorded(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "t.jsonl")
        tracer.enable(sink_path=path)
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        tracer.flush()
        (span,) = [e for e in read_trace(path) if e["type"] == "span"]
        assert span["attrs"]["error"] == "ValueError"

    def test_counters_add_and_gauges_overwrite(self):
        tracer = Tracer()
        tracer.enable()
        tracer.add("hits")
        tracer.add("hits", 2)
        tracer.gauge("depth", 3.0)
        tracer.gauge("depth", 1.0)
        assert tracer.counter_totals() == {"hits": 3}
        assert tracer.counters_snapshot() == {"hits": 3, "depth": 1.0}

    def test_flush_layout_meta_first_then_events_then_totals(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "t.jsonl")
        tracer.enable(sink_path=path, meta={"command": "unit"})
        with tracer.span("s"):
            tracer.add("z_counter")
            tracer.add("a_counter")
            tracer.event("snapshot", {"v": 1})
        tracer.flush()
        events = read_trace(path)
        assert events[0]["type"] == "meta"
        assert events[0]["version"] == TRACE_VERSION
        assert events[0]["attrs"] == {"command": "unit"}
        kinds = [e["type"] for e in events]
        # counters come after every span/metric event, sorted by name
        assert kinds.index("counter") > kinds.index("span")
        counters = [e["name"] for e in events if e["type"] == "counter"]
        assert counters == sorted(counters)
        assert validate_events(events) == []

    def test_metrics_only_mode_drops_events_keeps_counters(self):
        tracer = Tracer()
        tracer.enable(sink_path=None, record_events=False)
        with tracer.span("s"):
            tracer.add("c", 7)
            tracer.event("m", {})
        assert tracer.counter_totals() == {"c": 7}
        assert tracer._events == []

    def test_segment_dir_lives_next_to_sink(self, tmp_path):
        tracer = Tracer()
        sink = tmp_path / "deep" / "trace.jsonl"
        tracer.enable(sink_path=str(sink))
        segments = tracer.segment_dir()
        assert segments == str(sink) + ".segments"
        tracer.disable()
        tracer.enable(sink_path=None)
        assert tracer.segment_dir() is None


class TestAdoptSegment:
    def _write_segment(self, tmp_path, id_prefix):
        worker = Tracer()
        path = str(tmp_path / f"{id_prefix}segment.jsonl")
        worker.enable(sink_path=path, id_prefix=id_prefix)
        with worker.span("work"):
            with worker.span("step"):
                worker.add("widgets", 2)
        worker.flush()
        return path

    def test_merge_reparents_roots_and_aggregates_counters(self, tmp_path):
        parent = Tracer()
        merged = str(tmp_path / "merged.jsonl")
        parent.enable(sink_path=merged)
        parent.add("widgets", 1)
        for index in range(2):
            prefix = f"c{index}."
            segment = self._write_segment(tmp_path, prefix)
            with parent.span("cell") as cell:
                pass
            parent.adopt_segment(segment, parent_id=cell.span_id)
        parent.flush()
        events = read_trace(merged)
        assert validate_events(events) == []
        # worker roots hang off the parent's cell spans; children untouched
        roots = [e for e in events if e["type"] == "span" and e["name"] == "work"]
        cells = [e for e in events if e["type"] == "span" and e["name"] == "cell"]
        assert {r["parent"] for r in roots} == {c["id"] for c in cells}
        steps = [e for e in events if e["type"] == "span" and e["name"] == "step"]
        assert {s["parent"] for s in steps} == {r["id"] for r in roots}
        # counters aggregate: 1 (parent) + 2 + 2 (workers)
        (widgets,) = [e for e in events if e["type"] == "counter"]
        assert widgets["value"] == 5

    def test_id_prefixes_prevent_collisions(self, tmp_path):
        parent = Tracer()
        merged = str(tmp_path / "merged.jsonl")
        parent.enable(sink_path=merged)
        with parent.span("cell"):
            pass  # parent's own span uses the default 'p' prefix
        for index in range(2):
            parent.adopt_segment(self._write_segment(tmp_path, f"c{index}."))
        parent.flush()
        events = read_trace(merged)
        ids = [e["id"] for e in events if e["type"] == "span"]
        assert len(ids) == len(set(ids))


class TestSchema:
    def test_valid_events_pass(self):
        events = [
            {"type": "meta", "version": TRACE_VERSION, "pid": 1, "attrs": {}},
            {"type": "span", "name": "s", "id": "p1", "parent": None,
             "pid": 1, "ts": 1.0, "dur": 0.5, "attrs": {}},
            {"type": "metric", "name": "m", "pid": 1, "ts": 1.0, "fields": {}},
            {"type": "counter", "name": "c", "value": 2, "pid": 1},
            {"type": "gauge", "name": "g", "value": 0.5, "pid": 1},
        ]
        assert validate_events(events) == []

    def test_unknown_type_and_missing_fields(self):
        assert validate_event({"type": "bogus"})
        errors = validate_event({"type": "span", "name": "s"}, line_number=3)
        assert any("line 3" in e for e in errors)
        assert any("missing field" in e for e in errors)

    def test_first_line_must_be_meta(self):
        errors = validate_events(
            [{"type": "counter", "name": "c", "value": 1, "pid": 1}]
        )
        assert any("must start with a 'meta'" in e for e in errors)

    def test_duplicate_span_ids_flagged(self):
        span = {"type": "span", "name": "s", "id": "p1", "parent": None,
                "pid": 1, "ts": 0, "dur": 0, "attrs": {}}
        errors = validate_events(
            [{"type": "meta", "version": TRACE_VERSION, "pid": 1, "attrs": {}},
             span, dict(span)]
        )
        assert any("duplicate span id" in e for e in errors)

    def test_orphan_parent_flagged(self):
        events = [
            {"type": "meta", "version": TRACE_VERSION, "pid": 1, "attrs": {}},
            {"type": "span", "name": "s", "id": "p1", "parent": "ghost",
             "pid": 1, "ts": 0, "dur": 0, "attrs": {}},
        ]
        assert any("does not name any" in e for e in validate_events(events))

    def test_negative_duration_and_bad_version(self):
        errors = validate_event(
            {"type": "span", "name": "s", "id": "p1", "parent": None,
             "pid": 1, "ts": 0, "dur": -1, "attrs": {}}
        )
        assert any("negative" in e for e in errors)
        errors = validate_event(
            {"type": "meta", "version": 999, "pid": 1, "attrs": {}}
        )
        assert any("unsupported trace version" in e for e in errors)

    def test_validate_trace_file_roundtrip(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "t.jsonl")
        tracer.enable(sink_path=path)
        with tracer.span("s"):
            tracer.add("c")
        tracer.flush()
        assert validate_trace_file(path) == []


class TestReport:
    def _events(self):
        meta = {"type": "meta", "version": TRACE_VERSION, "pid": 1, "attrs": {}}
        spans = [
            {"type": "span", "name": "work", "id": f"p{i}", "parent": None,
             "pid": 1 + (i % 2), "ts": float(i), "dur": float(i),
             "attrs": {}}
            for i in range(1, 5)
        ]
        counters = [{"type": "counter", "name": "c", "value": 3, "pid": 1},
                    {"type": "counter", "name": "c", "value": 2, "pid": 2}]
        return [meta] + spans + counters

    def test_summary_aggregates(self):
        summary = summarize_events(self._events())
        assert summary["processes"] == 2
        (row,) = summary["spans"]
        assert row["count"] == 4
        assert row["total_s"] == 10.0
        assert row["max_s"] == 4.0
        # counters from several processes sum into one number
        assert summary["counters"] == {"c": 5}

    def test_slowest_and_per_process(self):
        slowest = slowest_spans(self._events(), limit=2)
        assert [s["dur_s"] for s in slowest] == [4.0, 3.0]
        totals = per_process_totals(self._events())
        assert {row["pid"]: row["spans"] for row in totals} == {1: 2, 2: 2}

    def test_format_summary_text_renders_table(self):
        text = format_summary_text(summarize_events(self._events()))
        assert "work" in text and "counters:" in text and "c = 5" in text

    def test_summarize_trace_reads_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(e) for e in self._events()) + "\n"
        )
        assert summarize_trace(str(path))["num_events"] == 7


class TestChromeExport:
    def test_spans_metrics_counters_convert(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "t.jsonl")
        tracer.enable(sink_path=path)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.add("c", 2)
                tracer.event("snap", {"v": 1})
        tracer.flush()
        document = chrome_trace(read_trace(path))
        phases = [e["ph"] for e in document["traceEvents"]]
        assert phases.count("X") == 2  # two complete spans
        assert "i" in phases and "C" in phases
        for entry in document["traceEvents"]:
            assert entry["ts"] >= 0  # rebased to the trace origin

    def test_write_chrome_trace_produces_loadable_json(self, tmp_path):
        tracer = Tracer()
        source = str(tmp_path / "t.jsonl")
        tracer.enable(sink_path=source)
        with tracer.span("s"):
            pass
        tracer.flush()
        output = tmp_path / "chrome.json"
        count = write_chrome_trace(source, str(output))
        document = json.loads(output.read_text())
        assert len(document["traceEvents"]) == count >= 1


class TestProgressLine:
    def test_updates_and_finish(self):
        class Sink:
            def __init__(self):
                self.chunks = []

            def write(self, text):
                self.chunks.append(text)

            def flush(self):
                pass

            def isatty(self):
                return True

        sink = Sink()
        line = ProgressLine("demo", total=2, stream=sink, min_interval_s=0.0)
        line.update(cached=False)
        line.update(cached=True)
        line.finish()
        text = "".join(sink.chunks)
        assert "demo" in text and "2/2" in text and "1 cached" in text
        assert text.endswith("\n")
