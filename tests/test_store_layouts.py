"""Layout engine tests: detection, the sharded index, lifecycle verbs.

``tests/test_store.py`` proves the layout-independent durability contract
on both layouts; this module covers what is new in the layered engine —
manifest detection, the compacted sidecar index (lazy loads, rebuilds,
torn rows), the ``repro store`` lifecycle verbs and CLI, the lock
acquisition backoff and stale-lock recovery, and a randomised proof that
``migrate`` round-trips a v1 store byte-identically.
"""

import itertools
import json
import multiprocessing
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StoreError
from repro.obs import TRACER
from repro.store import (
    MANIFEST_FILENAME,
    SHARDED,
    SINGLE_FILE,
    CampaignStore,
    ShardedLayout,
    SingleFileLayout,
    content_key,
    detect_layout,
    make_layout,
    store_compact,
    store_gc,
    store_migrate,
    store_stat,
    store_verify,
)
from repro.store.layout import IndexEntry

LAYOUTS = [SINGLE_FILE, SHARDED]


@pytest.fixture(params=LAYOUTS)
def layout(request):
    return request.param


def _populate(directory, layout, count=6):
    store = CampaignStore(directory, layout=layout)
    for index in range(count):
        store.put({"cell": index}, {"r": index * 3})
    return store


@pytest.fixture
def traced():
    TRACER.enable()
    try:
        yield TRACER
    finally:
        TRACER.disable()


class TestLayoutDetection:
    def test_empty_directory_detects_nothing_and_defaults_to_v1(self, tmp_path):
        assert detect_layout(str(tmp_path)) is None
        assert CampaignStore(tmp_path).layout_name == SINGLE_FILE

    def test_records_file_detects_single_file(self, tmp_path):
        _populate(tmp_path, SINGLE_FILE, count=1)
        assert detect_layout(str(tmp_path)) == SINGLE_FILE

    def test_manifest_detects_sharded_and_wins_over_stray_v1_file(
        self, tmp_path
    ):
        _populate(tmp_path, SHARDED, count=1)
        assert detect_layout(str(tmp_path)) == SHARDED
        # An interrupted migration can leave a dead records.jsonl behind;
        # the manifest stays authoritative.
        (tmp_path / "records.jsonl").write_text("dead\n")
        assert detect_layout(str(tmp_path)) == SHARDED

    def test_conflicting_explicit_layout_points_at_migrate(self, tmp_path):
        _populate(tmp_path, SINGLE_FILE, count=1)
        with pytest.raises(StoreError, match="repro store migrate"):
            CampaignStore(tmp_path, layout=SHARDED)

    def test_opening_v1_directory_as_sharded_layout_refuses(self, tmp_path):
        _populate(tmp_path, SINGLE_FILE, count=1)
        with pytest.raises(StoreError, match="migrate"):
            ShardedLayout(str(tmp_path))

    def test_unknown_layout_name_raises(self, tmp_path):
        with pytest.raises(StoreError, match="unknown store layout"):
            CampaignStore(tmp_path, layout="b-tree")
        with pytest.raises(StoreError, match="unknown store layout"):
            make_layout("b-tree", str(tmp_path))


class TestShardedRouting:
    def test_records_land_in_their_key_prefix_segment(self, tmp_path):
        store = _populate(tmp_path, SHARDED)
        for key in store.keys():
            segment = tmp_path / "segments" / f"{key[:2]}.jsonl"
            assert segment.exists()
            assert key.encode() in segment.read_bytes()

    def test_keys_preserve_global_commit_order_across_segments(self, tmp_path):
        store = _populate(tmp_path, SHARDED, count=12)
        expected = [content_key({"cell": index}) for index in range(12)]
        assert store.keys() == expected
        assert CampaignStore(tmp_path).keys() == expected

    def test_appends_after_lazy_reopen_continue_the_sequence(self, tmp_path):
        _populate(tmp_path, SHARDED, count=4)
        reopened = CampaignStore(tmp_path)
        reopened.put({"cell": 99}, {"r": 99})
        assert reopened.keys()[-1] == content_key({"cell": 99})
        assert CampaignStore(tmp_path).keys() == reopened.keys()

    def test_shard_of_rejects_unshardable_keys(self, tmp_path):
        layout = CampaignStore(tmp_path, layout=SHARDED).layout
        from repro.store import StoreIntegrityError

        with pytest.raises(StoreIntegrityError, match="too short"):
            layout.shard_of("ab")


class TestSidecarIndex:
    def test_open_and_membership_never_parse_payloads(self, tmp_path, traced):
        store = _populate(tmp_path, SHARDED)
        keys = store.keys()
        reopened = CampaignStore(tmp_path)
        assert all(key in reopened for key in keys)
        counters = traced.counter_totals()
        assert counters.get("store.lazy_record_loads", 0) == 0
        assert counters.get("store.index.rebuilds", 0) == 0
        reopened.get(keys[0])
        assert traced.counter_totals()["store.lazy_record_loads"] == 1

    def test_filtered_query_loads_only_matching_records(self, tmp_path, traced):
        store = CampaignStore(tmp_path, layout=SHARDED)
        for seed in range(5):
            store.put({"scenario": "burst", "seed": seed}, {"r": seed})
        reopened = CampaignStore(tmp_path)
        [match] = reopened.query(seed=3)
        assert match.result == {"r": 3}
        assert traced.counter_totals()["store.lazy_record_loads"] == 1

    def test_deleted_sidecars_are_rebuilt_from_segments(self, tmp_path, traced):
        store = _populate(tmp_path, SHARDED)
        for sidecar in (tmp_path / "index").glob("*.idx"):
            sidecar.unlink()
        reopened = CampaignStore(tmp_path)
        # Commit sequence numbers live in the sidecars, so losing *all* of
        # them loses the cross-segment interleaving: the rebuild recovers
        # every record (verified bytes, per-segment order intact) with a
        # deterministic — but not the original — global order.
        assert sorted(reopened.keys()) == sorted(store.keys())
        assert {r.key: r for r in reopened.records()} == {
            r.key: r for r in store.records()
        }
        assert traced.counter_totals()["store.index.rebuilds"] >= 1
        assert list((tmp_path / "index").glob("*.idx"))  # rewritten compacted
        assert CampaignStore(tmp_path).keys() == reopened.keys()

    def test_torn_final_sidecar_row_is_forgiven(self, tmp_path):
        store = _populate(tmp_path, SHARDED)
        [first] = [s for s in (tmp_path / "index").glob("*.idx")][:1]
        with open(first, "ab") as handle:
            handle.write(b'{"k":"deadbeef')  # writer died mid index append
        reopened = CampaignStore(tmp_path)
        assert reopened.keys() == store.keys()

    def test_unparseable_final_sidecar_line_is_forgiven(self, tmp_path):
        store = _populate(tmp_path, SHARDED)
        [first] = [s for s in (tmp_path / "index").glob("*.idx")][:1]
        with open(first, "ab") as handle:
            handle.write(b"nonsense\n")
        reopened = CampaignStore(tmp_path)
        assert reopened.keys() == store.keys()

    def test_mid_sidecar_corruption_triggers_full_rebuild(
        self, tmp_path, traced
    ):
        store = _populate(tmp_path, SHARDED, count=40)  # multi-row sidecars
        sidecars = sorted(
            (tmp_path / "index").glob("*.idx"),
            key=lambda p: -len(p.read_bytes().splitlines()),
        )
        victim = sidecars[0]
        rows = victim.read_bytes().splitlines(keepends=True)
        assert len(rows) >= 2
        victim.write_bytes(b"nonsense\n" + b"".join(rows[1:]))
        reopened = CampaignStore(tmp_path)
        # The damaged shard is rebuilt (fresh seqs); the rest keep theirs.
        assert sorted(reopened.keys()) == sorted(store.keys())
        assert {r.key: r for r in reopened.records()} == {
            r.key: r for r in store.records()
        }
        assert traced.counter_totals()["store.index.rebuilds"] >= 1
        assert CampaignStore(tmp_path).keys() == reopened.keys()

    def test_non_canonical_field_order_falls_back_to_json_parse(
        self, tmp_path
    ):
        store = _populate(tmp_path, SHARDED)
        [sidecar] = [s for s in (tmp_path / "index").glob("*.idx")][:1]
        rows = sidecar.read_text().splitlines()
        # Re-emit the first row with sorted keys: structurally alien to the
        # fast path (key no longer leads), still a valid index row.
        payload = json.loads(rows[0])
        rows[0] = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        sidecar.write_text("".join(row + "\n" for row in rows))
        assert CampaignStore(tmp_path).keys() == store.keys()

    def test_lazy_entry_with_mismatched_key_fails_on_decode(self):
        honest = IndexEntry(
            key="ab" + "0" * 62, shard="ab", offset=0, length=10, seq=0,
            config={"cell": 1},
        )
        raw = honest.to_json_line().encode("utf-8")
        doctored = IndexEntry.lazy("ab" + "1" * 62, "ab", raw)
        from repro.store import StoreIntegrityError

        with pytest.raises(StoreIntegrityError, match="repro store compact"):
            doctored.offset


class TestLifecycleOps:
    def test_stat_reports_layout_and_sizes(self, tmp_path, layout):
        _populate(tmp_path, layout)
        stat = store_stat(str(tmp_path))
        assert stat["layout"] == layout
        assert stat["records"] == 6
        assert stat["bytes"] > 0
        if layout == SHARDED:
            assert stat["segments"] == len(
                list((tmp_path / "segments").glob("*.jsonl"))
            )
            assert stat["shard_prefix_chars"] == 2
            assert sum(row["records"] for row in stat["segment_detail"]) == 6
        else:
            assert stat["segments"] == 1

    def test_verify_passes_on_a_clean_store(self, tmp_path, layout):
        _populate(tmp_path, layout)
        report = store_verify(str(tmp_path))
        assert report["ok"] and report["problems"] == []
        assert report["records"] == 6

    def test_verify_catches_an_in_place_bit_flip(self, tmp_path, layout):
        _populate(tmp_path, layout)
        # Same-length tamper of a *config* byte: offsets and coverage stay
        # consistent, so only re-deriving the content address from the
        # stored config (what verify forces for every record) can notice.
        _tamper_config_in_place(tmp_path)
        report = store_verify(str(tmp_path))
        assert not report["ok"]
        assert any("content address" in problem for problem in report["problems"])

    def test_verify_on_an_empty_directory_reports_no_store(self, tmp_path):
        report = store_verify(str(tmp_path))
        assert not report["ok"]
        assert "no campaign store" in report["problems"][0]

    def test_compact_is_a_byte_level_noop_on_canonical_stores(
        self, tmp_path, layout
    ):
        _populate(tmp_path, layout)
        before = {
            str(path): path.read_bytes()
            for path in tmp_path.rglob("*.jsonl")
        }
        summary = store_compact(str(tmp_path))
        assert summary["records"] == 6
        assert summary["bytes_before"] == summary["bytes_after"]
        for path, payload in before.items():
            assert open(path, "rb").read() == payload

    def test_compact_drops_stray_whitespace(self, tmp_path):
        _populate(tmp_path, SHARDED)
        [segment] = sorted((tmp_path / "segments").glob("*.jsonl"))[:1]
        with open(segment, "ab") as handle:
            handle.write(b"   \n")
        summary = store_compact(str(tmp_path))
        assert summary["bytes_after"] == summary["bytes_before"] - 4
        assert store_verify(str(tmp_path))["ok"]

    def test_gc_sweeps_dead_artifacts(self, tmp_path):
        from repro.store.locks import owner_stamp

        _populate(tmp_path, SHARDED)
        dead = multiprocessing.Process(target=_exit_immediately)
        dead.start()
        dead.join()
        stamp = f"{dead.pid}\n{os.uname().nodename}\n".encode()
        assert owner_stamp() != stamp
        stale_lock = tmp_path / "segments" / "aa.lock"
        stale_lock.write_bytes(stamp)
        tmp_file = tmp_path / "segments" / "aa.jsonl.tmp"
        tmp_file.write_bytes(b"partial")
        orphan = tmp_path / "index" / "zz.idx"
        orphan.write_bytes(b"{}\n")
        dead_v1 = tmp_path / "records.jsonl"
        dead_v1.write_bytes(b"leftover\n")

        summary = store_gc(str(tmp_path))
        removed = summary["removed"]
        assert str(stale_lock) in removed["stale_locks"]
        assert str(tmp_file) in removed["tmp_files"]
        assert str(orphan) in removed["orphan_sidecars"]
        assert str(dead_v1) in removed["migration_leftovers"]
        for path in (stale_lock, tmp_file, orphan, dead_v1):
            assert not path.exists()
        assert store_verify(str(tmp_path))["ok"]

    def test_migrate_is_a_noop_when_already_at_target(self, tmp_path, layout):
        _populate(tmp_path, layout)
        summary = store_migrate(str(tmp_path), layout)
        assert summary["migrated"] is False
        assert summary["records"] == 6

    def test_migrate_rejects_unknown_targets_and_empty_directories(
        self, tmp_path
    ):
        with pytest.raises(StoreError, match="no campaign store"):
            store_migrate(str(tmp_path), SHARDED)
        _populate(tmp_path, SINGLE_FILE, count=1)
        with pytest.raises(StoreError, match="unknown migration target"):
            store_migrate(str(tmp_path), "b-tree")

    def test_migrate_v1_to_v2_preserves_records_and_order(
        self, tmp_path, traced
    ):
        store = _populate(tmp_path, SINGLE_FILE, count=20)
        keys = store.keys()
        summary = store_migrate(str(tmp_path), SHARDED)
        assert summary["migrated"] and summary["records"] == 20
        assert not (tmp_path / "records.jsonl").exists()
        assert (tmp_path / MANIFEST_FILENAME).exists()
        migrated = CampaignStore(tmp_path)
        assert migrated.layout_name == SHARDED
        assert migrated.keys() == keys
        assert [r.result for r in migrated.records()] == [
            {"r": index * 3} for index in range(20)
        ]
        assert traced.counter_totals()["store.migrations"] == 1

    def test_migrate_round_trip_is_byte_identical(self, tmp_path):
        _populate(tmp_path, SINGLE_FILE, count=20)
        v1_bytes = (tmp_path / "records.jsonl").read_bytes()
        store_migrate(str(tmp_path), SHARDED)
        store_compact(str(tmp_path))
        store_migrate(str(tmp_path), SINGLE_FILE)
        assert (tmp_path / "records.jsonl").read_bytes() == v1_bytes
        assert not (tmp_path / MANIFEST_FILENAME).exists()
        assert not (tmp_path / "segments").exists()
        assert not (tmp_path / "index").exists()
        assert detect_layout(str(tmp_path)) == SINGLE_FILE


def _exit_immediately():
    return None


def _tamper_config_in_place(directory):
    """Flip one config byte of the cell-5 record without moving any offset."""
    needle, doctored = b'"cell":5', b'"cell":7'
    for path in sorted(directory.rglob("*.jsonl")):
        raw = path.read_bytes()
        if needle in raw:
            path.write_bytes(raw.replace(needle, doctored, 1))
            return
    raise AssertionError("no record to tamper")


class TestStoreCli:
    def test_stat_text_and_json(self, tmp_path, capsys):
        from repro.cli import main

        _populate(tmp_path, SHARDED)
        assert main(["store", "stat", str(tmp_path)]) == 0
        assert "layout sharded" in capsys.readouterr().out
        assert main(["store", "stat", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 6

    def test_verify_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        _populate(tmp_path, SHARDED)
        assert main(["store", "verify", str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out
        _tamper_config_in_place(tmp_path)
        assert main(["store", "verify", str(tmp_path)]) == 1
        assert "problem" in capsys.readouterr().out

    def test_migrate_compact_gc_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        _populate(tmp_path, SINGLE_FILE)
        v1_bytes = (tmp_path / "records.jsonl").read_bytes()
        assert main(["store", "migrate", str(tmp_path), "--to", "sharded"]) == 0
        assert "round-trip verified" in capsys.readouterr().out
        assert main(["store", "migrate", str(tmp_path), "--to", "sharded"]) == 0
        assert "nothing to do" in capsys.readouterr().out
        assert main(["store", "compact", str(tmp_path)]) == 0
        assert main(["store", "gc", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(
            ["store", "migrate", str(tmp_path), "--to", "single-file"]
        ) == 0
        assert (tmp_path / "records.jsonl").read_bytes() == v1_bytes


class TestLockBackoffAndStaleRecovery:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        from repro.store import backoff_delays
        from repro.store.locks import (
            BACKOFF_CAP_S,
            BACKOFF_FACTOR,
            BACKOFF_INITIAL_S,
        )

        first = list(itertools.islice(backoff_delays(), 12))
        assert first == list(itertools.islice(backoff_delays(), 12))
        assert first[0] == BACKOFF_INITIAL_S
        assert first[1] == BACKOFF_INITIAL_S * BACKOFF_FACTOR
        assert all(b >= a for a, b in zip(first, first[1:]))
        assert first[-1] == BACKOFF_CAP_S
        assert max(first) <= BACKOFF_CAP_S

    def test_owner_stamp_names_this_process(self):
        from repro.store.locks import owner_stamp

        pid_line, host_line = owner_stamp().decode().splitlines()
        assert int(pid_line) == os.getpid()
        assert host_line

    def test_stale_lockfile_judgement(self, tmp_path):
        from repro.store.locks import is_stale_lockfile, owner_stamp

        lock = tmp_path / "x.lock"
        assert not is_stale_lockfile(str(lock))  # missing
        lock.write_bytes(b"")
        assert not is_stale_lockfile(str(lock))  # fcntl-style, no stamp
        lock.write_bytes(owner_stamp())
        assert not is_stale_lockfile(str(lock))  # owner (us) is alive
        lock.write_bytes(b"not-a-pid\nhost\n")
        assert not is_stale_lockfile(str(lock))  # unreadable stamp
        lock.write_bytes(f"{os.getpid()}\nsome-other-host\n".encode())
        assert not is_stale_lockfile(str(lock))  # cannot probe other hosts
        dead = multiprocessing.Process(target=_exit_immediately)
        dead.start()
        dead.join()
        lock.write_bytes(f"{dead.pid}\n{os.uname().nodename}\n".encode())
        assert is_stale_lockfile(str(lock))

    def test_fallback_breaks_dead_owner_locks(
        self, tmp_path, monkeypatch, traced
    ):
        import repro.store.locks as locks

        monkeypatch.setattr(locks, "fcntl", None)
        dead = multiprocessing.Process(target=_exit_immediately)
        dead.start()
        dead.join()
        lock = tmp_path / "records.lock"
        lock.write_bytes(f"{dead.pid}\n{os.uname().nodename}\n".encode())
        with locks.file_lock(str(lock), timeout_s=1.0):
            # The dead owner's file was unlinked and replaced with ours.
            assert str(os.getpid()).encode() in lock.read_bytes()
        assert not lock.exists()
        assert traced.counter_totals()["store.lock_breaks"] == 1

    def test_fallback_honours_live_owner_locks(self, tmp_path, monkeypatch):
        import repro.store.locks as locks
        from repro.store import StoreLockTimeoutError

        monkeypatch.setattr(locks, "fcntl", None)
        lock = tmp_path / "records.lock"
        lock.write_bytes(locks.owner_stamp())  # we are alive: not stale
        with pytest.raises(StoreLockTimeoutError):
            with locks.file_lock(str(lock), timeout_s=0.2):
                pass  # pragma: no cover - must not acquire
        assert lock.exists()

    def test_fallback_put_works_end_to_end(self, tmp_path, monkeypatch):
        import repro.store.locks as locks

        monkeypatch.setattr(locks, "fcntl", None)
        store = CampaignStore(tmp_path, layout=SHARDED)
        record = store.put({"cell": 1}, {"r": 1})
        assert CampaignStore(tmp_path).get(record.key) == record


# -- randomised migration round-trip ----------------------------------------

_FIELD = st.text(alphabet="abcdefgh_", min_size=1, max_size=6)
_SCALAR = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.booleans(),
    st.text(alphabet='xy "\\\né', max_size=6),
)
_VALUE = st.one_of(_SCALAR, st.lists(_SCALAR, max_size=3))
_CONFIG = st.dictionaries(_FIELD, _VALUE, min_size=1, max_size=4)


class TestMigrationRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(pairs=st.lists(st.tuples(_CONFIG, _CONFIG), min_size=1, max_size=10))
    def test_v1_v2_compact_v1_is_byte_identical(self, pairs):
        workdir = tempfile.mkdtemp(prefix="store_prop_")
        try:
            store = CampaignStore(workdir)
            seen = set()
            for config, result in pairs:
                key = content_key(config)
                if key in seen:
                    continue
                seen.add(key)
                store.put(config, {"payload": result})
            records_path = os.path.join(workdir, "records.jsonl")
            v1_bytes = open(records_path, "rb").read()
            keys = store.keys()

            store_migrate(workdir, SHARDED)
            sharded = CampaignStore(workdir)
            assert sharded.layout_name == SHARDED
            assert sharded.keys() == keys
            assert store_verify(workdir)["ok"]

            store_compact(workdir)
            store_migrate(workdir, SINGLE_FILE)
            assert open(records_path, "rb").read() == v1_bytes
            assert isinstance(
                CampaignStore(workdir).layout, SingleFileLayout
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
