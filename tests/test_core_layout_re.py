"""Tests for cell-type and dataword-layout reverse engineering (Sections 5.1.1-5.1.2)."""

from repro.dram import (
    CellType,
    CellTypeLayout,
    ChipGeometry,
    DataRetentionModel,
    SimulatedDramChip,
    VENDOR_C,
)
from repro.dram.layout import ByteInterleavedWordLayout, SequentialWordLayout
from repro.dram.retention import RetentionCalibration
from repro.ecc import hamming_code
from repro.core import discover_cell_types, discover_dataword_layout
from repro.core.layout_re import estimate_dataword_bits


#: Retention model with very frequent failures so small chips expose layout
#: information quickly during tests.
AGGRESSIVE = DataRetentionModel(RetentionCalibration(1.0, 0.02, 100.0, 0.6))


def make_chip(cell_layout=None, word_layout=None, num_rows=8, words_per_row=4, seed=0):
    code = hamming_code(16)
    return SimulatedDramChip(
        code,
        ChipGeometry(num_rows, words_per_row),
        cell_layout=cell_layout,
        word_layout=word_layout,
        retention_model=AGGRESSIVE,
        seed=seed,
    )


class TestDiscoverCellTypes:
    def test_all_true_cell_chip(self):
        chip = make_chip(cell_layout=CellTypeLayout.uniform(CellType.TRUE_CELL))
        classification = discover_cell_types(chip, refresh_pause_s=80.0)
        assert all(v is CellType.TRUE_CELL for v in classification.values())
        assert len(classification) == chip.geometry.num_rows

    def test_all_anti_cell_chip(self):
        chip = make_chip(cell_layout=CellTypeLayout.uniform(CellType.ANTI_CELL), seed=1)
        classification = discover_cell_types(chip, refresh_pause_s=80.0)
        anti_rows = sum(1 for v in classification.values() if v is CellType.ANTI_CELL)
        assert anti_rows >= chip.geometry.num_rows - 1

    def test_alternating_blocks_recovered(self):
        layout = CellTypeLayout.alternating([2, 2])
        chip = make_chip(cell_layout=layout, num_rows=8, words_per_row=8, seed=2)
        classification = discover_cell_types(chip, refresh_pause_s=90.0)
        correct = sum(
            1
            for row, cell_type in classification.items()
            if cell_type is layout.cell_type_for_row(row)
        )
        assert correct >= 7  # allow one inconclusive row

    def test_vendor_c_chip_has_both_types(self):
        chip = VENDOR_C.make_chip(
            num_data_bits=16,
            geometry=ChipGeometry(16, 4),
            seed=3,
            retention_model=AGGRESSIVE,
        )
        classification = discover_cell_types(chip, refresh_pause_s=90.0)
        assert CellType.TRUE_CELL in classification.values()
        assert CellType.ANTI_CELL in classification.values()


class TestDiscoverDatawordLayout:
    def test_byte_interleaved_layout_groups_alternating_bytes(self):
        word_layout = ByteInterleavedWordLayout(dataword_bytes=2, words_per_region=2)
        chip = make_chip(word_layout=word_layout, num_rows=16, words_per_row=8, seed=4)
        groups = discover_dataword_layout(chip, refresh_pause_s=95.0)
        # Region = 4 bytes; words are {0, 2} and {1, 3}.
        groups_as_sets = [set(group) for group in groups if len(group) > 1]
        for group in groups_as_sets:
            assert group in ({0, 2}, {1, 3})
        assert len(groups_as_sets) >= 1

    def test_sequential_layout_groups_adjacent_bytes(self):
        word_layout = SequentialWordLayout(dataword_bytes=2)
        chip = make_chip(word_layout=word_layout, num_rows=16, words_per_row=8, seed=5)
        groups = discover_dataword_layout(chip, region_bytes=4, refresh_pause_s=95.0)
        for group in groups:
            if len(group) > 1:
                assert set(group) in ({0, 1}, {2, 3})

    def test_groups_partition_the_region(self):
        chip = make_chip(
            word_layout=ByteInterleavedWordLayout(2, 2), num_rows=8, words_per_row=8, seed=6
        )
        groups = discover_dataword_layout(chip, refresh_pause_s=95.0)
        flattened = sorted(offset for group in groups for offset in group)
        assert flattened == list(range(4))

    def test_estimate_dataword_bits(self):
        assert estimate_dataword_bits([[0, 2], [1, 3]]) == 16
        assert estimate_dataword_bits([[0, 2], [1]]) == 16

    def test_anti_cell_rows_handled_with_classification(self):
        layout = CellTypeLayout.uniform(CellType.ANTI_CELL)
        chip = make_chip(
            cell_layout=layout,
            word_layout=ByteInterleavedWordLayout(2, 2),
            num_rows=8,
            words_per_row=8,
            seed=7,
        )
        cell_types = {row: CellType.ANTI_CELL for row in range(8)}
        groups = discover_dataword_layout(
            chip, refresh_pause_s=95.0, cell_types=cell_types
        )
        for group in groups:
            if len(group) > 1:
                assert set(group) in ({0, 2}, {1, 3})
