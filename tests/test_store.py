"""Tests for the content-addressed campaign store.

The behavioural suites (basic API, crash recovery, concurrent writers,
lock timeouts) run against *both* storage layouts: the v1 single-file
``records.jsonl`` and the v2 sharded segment store.  The durability
contract — atomic fsynced appends, multi-writer dedupe, torn-tail
repair, loud mid-file corruption — is layout-independent; v2 simply
enforces it per segment.
"""

import json
import multiprocessing
import os

import pytest

from repro.store import (
    SHARDED,
    SINGLE_FILE,
    CampaignStore,
    ResultRecord,
    StoreIntegrityError,
    canonical_json,
    content_key,
)

LAYOUTS = [SINGLE_FILE, SHARDED]


@pytest.fixture(params=LAYOUTS)
def layout(request):
    return request.param


def _record_files(directory):
    """Every file holding record payloads, sorted (one for v1, N for v2)."""
    segments = directory / "segments"
    if segments.is_dir():
        return sorted(segments.glob("*.jsonl"))
    return [directory / "records.jsonl"]


def _all_record_lines(directory):
    lines = []
    for path in _record_files(directory):
        lines.extend(path.read_bytes().splitlines())
    return lines


def _colliding_cells(count=3):
    """The first ``count`` cells whose ``{"cell": n}`` keys share a shard.

    Crash-recovery tests need their records physically adjacent in one
    file for byte-level surgery; for the sharded layout that means one
    segment, so the cells must collide on the 2-hex key prefix.
    """
    groups = {}
    cell = 0
    while True:
        shard = content_key({"cell": cell})[:2]
        groups.setdefault(shard, []).append(cell)
        if len(groups[shard]) == count:
            return groups[shard]
        cell += 1


class TestCanonicalisation:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_independent_of_insertion_order(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_key_sensitive_to_values(self):
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_record_round_trips_through_json_line(self):
        record = ResultRecord(
            key="k", config={"x": 1}, result={"counts": [1, 2, 3]}
        )
        assert ResultRecord.from_json_line(record.to_json_line()) == record


class TestCampaignStore:
    def test_put_and_get(self, tmp_path, layout):
        store = CampaignStore(tmp_path / "camp", layout=layout)
        record = store.put({"a": 1}, {"r": 2})
        assert record.key == content_key({"a": 1})
        assert store.get(record.key) == record
        assert record.key in store
        assert len(store) == 1

    def test_records_persist_across_reopen(self, tmp_path, layout):
        directory = tmp_path / "camp"
        store = CampaignStore(directory, layout=layout)
        store.put({"a": 1}, {"r": 1})
        store.put({"a": 2}, {"r": 2})
        reopened = CampaignStore(directory)  # layout auto-detected
        assert reopened.layout_name == layout
        assert len(reopened) == 2
        assert reopened.keys() == store.keys()
        assert [r.result for r in reopened.records()] == [{"r": 1}, {"r": 2}]

    def test_put_is_idempotent_for_identical_results(self, tmp_path, layout):
        store = CampaignStore(tmp_path / "camp", layout=layout)
        store.put({"a": 1}, {"r": 1})
        store.put({"a": 1}, {"r": 1})
        assert len(store) == 1
        assert len(_all_record_lines(tmp_path / "camp")) == 1

    def test_conflicting_result_raises(self, tmp_path, layout):
        store = CampaignStore(tmp_path / "camp", layout=layout)
        store.put({"a": 1}, {"r": 1})
        with pytest.raises(StoreIntegrityError):
            store.put({"a": 1}, {"r": 999})

    def test_query_filters_on_config_fields(self, tmp_path, layout):
        store = CampaignStore(tmp_path / "camp", layout=layout)
        store.put({"scenario": "burst", "seed": 0}, {"r": 1})
        store.put({"scenario": "burst", "seed": 1}, {"r": 2})
        store.put({"scenario": "uniform-random", "seed": 0}, {"r": 3})
        assert len(store.query(scenario="burst")) == 2
        assert len(store.query(scenario="burst", seed=1)) == 1
        assert len(store.query(predicate=lambda r: r.result["r"] > 1)) == 2

    def test_store_files_are_canonical_json_lines(self, tmp_path, layout):
        store = CampaignStore(tmp_path / "camp", layout=layout)
        store.put({"b": 2, "a": 1}, {"z": 1, "y": 2})
        [line] = _all_record_lines(tmp_path / "camp")
        text = line.decode("utf-8")
        assert text == canonical_json(json.loads(text))

    def test_directory_created_on_open(self, tmp_path, layout):
        target = tmp_path / "nested" / "camp"
        CampaignStore(target, layout=layout)
        assert os.path.isdir(target)


class TestCrashRecovery:
    """A writer killed mid-append must not make the store unopenable.

    For the sharded layout the three records collide onto one segment, so
    the byte surgery below exercises exactly the per-segment repair path.
    Where a test rewrites bytes *covered by the sidecar index* it removes
    the index first: a lazy open trusts coverage-consistent index entries
    by design (``repro store verify`` deep-checks them), and dropping the
    sidecar forces the full segment scan whose semantics must match v1.
    """

    @staticmethod
    def _populated(directory, layout):
        cells = _colliding_cells(3)
        store = CampaignStore(directory, layout=layout)
        for index, cell in enumerate(cells):
            store.put({"cell": cell}, {"r": index * 10})
        if layout == SHARDED:
            shard = content_key({"cell": cells[0]})[:2]
            return directory / "segments" / f"{shard}.jsonl", cells
        return directory / "records.jsonl", cells

    @staticmethod
    def _drop_index(directory):
        index_dir = directory / "index"
        if index_dir.is_dir():
            for sidecar in index_dir.glob("*.idx"):
                sidecar.unlink()

    def test_torn_trailing_line_is_truncated_and_resumes(
        self, tmp_path, layout
    ):
        records, cells = self._populated(tmp_path / "camp", layout)
        intact = records.read_bytes()
        torn_at = intact.rstrip(b"\n").rfind(b"\n") + 1
        # Crash mid-append: the last record only half made it to disk.
        records.write_bytes(intact[: torn_at + 17])

        reopened = CampaignStore(tmp_path / "camp")
        assert len(reopened) == 2
        # The torn tail is gone from disk, so a fresh append lands cleanly...
        assert records.read_bytes() == intact[:torn_at]
        reopened.put({"cell": cells[2]}, {"r": 20})
        # ...and the repaired store ends up byte-identical to the uncrashed one.
        assert records.read_bytes() == intact

    def test_complete_tail_missing_only_newline_is_kept(
        self, tmp_path, layout
    ):
        records, cells = self._populated(tmp_path / "camp", layout)
        intact = records.read_bytes()
        records.write_bytes(intact[:-1])  # crash ate just the final "\n"

        reopened = CampaignStore(tmp_path / "camp")
        assert len(reopened) == 3
        assert reopened.get(content_key({"cell": cells[2]})).result == {"r": 20}
        assert records.read_bytes() == intact

    def test_torn_line_before_the_tail_is_real_corruption(
        self, tmp_path, layout
    ):
        records, _ = self._populated(tmp_path / "camp", layout)
        lines = records.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:25] + b"\n"
        records.write_bytes(b"".join(lines))
        with pytest.raises(StoreIntegrityError, match="unparseable"):
            CampaignStore(tmp_path / "camp")

    def test_key_config_mismatch_fails_loudly(self, tmp_path, layout):
        records, _ = self._populated(tmp_path / "camp", layout)
        payload = json.loads(records.read_bytes().splitlines()[0])
        payload["config"] = {"cell": "tampered"}
        doctored = canonical_json(payload).encode() + b"\n"
        original = records.read_bytes()
        records.write_bytes(
            doctored + b"".join(original.splitlines(keepends=True)[1:])
        )
        self._drop_index(tmp_path / "camp")
        with pytest.raises(StoreIntegrityError, match="content address"):
            CampaignStore(tmp_path / "camp")

    def test_conflicting_results_for_one_key_fail_loudly(
        self, tmp_path, layout
    ):
        records, cells = self._populated(tmp_path / "camp", layout)
        conflicting = ResultRecord(
            key=content_key({"cell": cells[0]}),
            config={"cell": cells[0]},
            result={"r": 999},
        )
        with open(records, "ab") as handle:
            handle.write(conflicting.to_json_line().encode() + b"\n")
        with pytest.raises(StoreIntegrityError, match="two different results"):
            CampaignStore(tmp_path / "camp")

    def test_tampered_tail_without_newline_fails_loudly(
        self, tmp_path, layout
    ):
        # A torn append can never fully parse, so a parseable tail whose key
        # fails verification is tampering, not crash damage — it must not be
        # silently truncated away.
        records, _ = self._populated(tmp_path / "camp", layout)
        lines = records.read_bytes().splitlines(keepends=True)
        payload = json.loads(lines[-1])
        payload["config"] = {"cell": "tampered"}
        records.write_bytes(
            b"".join(lines[:-1]) + canonical_json(payload).encode()
        )
        self._drop_index(tmp_path / "camp")
        with pytest.raises(StoreIntegrityError, match="content address"):
            CampaignStore(tmp_path / "camp")

    def test_non_object_json_line_fails_loudly(self, tmp_path, layout):
        records, _ = self._populated(tmp_path / "camp", layout)
        with open(records, "ab") as handle:
            handle.write(b"null\n")
        with pytest.raises(StoreIntegrityError, match="unparseable"):
            CampaignStore(tmp_path / "camp")

    def test_whitespace_tail_is_absorbed(self, tmp_path, layout):
        records, _ = self._populated(tmp_path / "camp", layout)
        with open(records, "ab") as handle:
            handle.write(b"  ")
        assert len(CampaignStore(tmp_path / "camp")) == 3


def _hammer_store(directory, writer_id, keys_per_writer, shared_keys, barrier):
    """Open an independent store handle and race puts against siblings."""
    store = CampaignStore(directory)
    barrier.wait()
    for index in range(keys_per_writer):
        store.put({"writer": writer_id, "cell": index}, {"r": index})
    for index in range(shared_keys):
        # Every writer also commits the same shared cells with identical
        # results — the refresh-under-lock protocol must dedupe them.
        store.put({"shared": index}, {"r": index * 7})


class TestConcurrentWriters:
    def test_two_writers_produce_no_torn_or_duplicate_records(
        self, tmp_path, layout
    ):
        directory = tmp_path / "camp"
        CampaignStore(directory, layout=layout)  # fix the layout up front
        keys_per_writer, shared_keys = 40, 15
        barrier = multiprocessing.Barrier(2)
        workers = [
            multiprocessing.Process(
                target=_hammer_store,
                args=(directory, writer, keys_per_writer, shared_keys, barrier),
            )
            for writer in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0

        lines = []
        for path in _record_files(directory):
            raw = path.read_bytes()
            assert raw.endswith(b"\n")
            lines.extend(raw.splitlines())
        # Every line parses and key-verifies: nothing interleaved, nothing torn.
        records = [ResultRecord.from_json_line(line.decode()) for line in lines]
        for record in records:
            assert record.key == content_key(record.config)
        # Exactly one line per unique cell, shared cells included.
        assert len(lines) == 2 * keys_per_writer + shared_keys
        assert len({record.key for record in records}) == len(lines)

        reopened = CampaignStore(directory)
        assert reopened.layout_name == layout
        assert len(reopened) == len(lines)
        for index in range(shared_keys):
            assert reopened.get(content_key({"shared": index})).result == {
                "r": index * 7
            }


class TestLockTimeout:
    """A wedged peer must surface as a clear error, not an eternal hang."""

    def test_put_times_out_against_a_held_lock(self, tmp_path, layout):
        from repro.store import StoreLockTimeoutError, file_lock

        store = CampaignStore(tmp_path, lock_timeout_s=0.2, layout=layout)
        config = {"kind": "x"}
        if layout == SHARDED:
            lock_path = (
                tmp_path / "segments" / f"{content_key(config)[:2]}.lock"
            )
        else:
            lock_path = tmp_path / "records.lock"
        # flock conflicts across file descriptors even within one process,
        # so holding the lock here is indistinguishable from a wedged peer.
        with file_lock(str(lock_path), timeout_s=30.0):
            with pytest.raises(StoreLockTimeoutError) as excinfo:
                store.put(config, {"ok": True})
        error = excinfo.value
        assert error.waited_s >= 0.2
        assert str(lock_path) == error.lock_path
        assert "REPRO_STORE_LOCK_TIMEOUT" in str(error)

    def test_timeout_error_is_a_store_error(self):
        from repro.exceptions import ReproError
        from repro.store import StoreError, StoreLockTimeoutError

        assert issubclass(StoreLockTimeoutError, StoreError)
        assert issubclass(StoreIntegrityError, StoreError)
        assert issubclass(StoreError, ReproError)

    def test_env_var_overrides_default(self, monkeypatch):
        from repro.store import (
            DEFAULT_LOCK_TIMEOUT_S,
            LOCK_TIMEOUT_ENV,
            resolve_lock_timeout,
        )

        assert resolve_lock_timeout(None) == DEFAULT_LOCK_TIMEOUT_S
        assert resolve_lock_timeout(7.5) == 7.5
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "0.25")
        assert resolve_lock_timeout(None) == 0.25
        # an explicit argument still beats the environment
        assert resolve_lock_timeout(3.0) == 3.0

    def test_bad_env_values_raise_clear_errors(self, monkeypatch):
        from repro.store import LOCK_TIMEOUT_ENV, StoreError, resolve_lock_timeout

        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "not-a-number")
        with pytest.raises(StoreError, match="not-a-number"):
            resolve_lock_timeout(None)
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "-1")
        with pytest.raises(StoreError, match="positive"):
            resolve_lock_timeout(None)

    def test_lock_wait_counters_recorded_when_traced(self, tmp_path, layout):
        from repro.obs import TRACER

        store = CampaignStore(tmp_path, layout=layout)
        TRACER.enable()
        try:
            store.put({"kind": "x"}, {"ok": True})
            counters = TRACER.counter_totals()
        finally:
            TRACER.disable()
        prefix = "store.segment.lock" if layout == SHARDED else "store.lock"
        assert counters[f"{prefix}_acquisitions"] >= 1
        assert counters["store.appends"] == 1
        assert counters["store.fsync_s"] >= 0
