"""Tests for the content-addressed campaign store."""

import json
import os

import pytest

from repro.store import (
    CampaignStore,
    ResultRecord,
    StoreIntegrityError,
    canonical_json,
    content_key,
)


class TestCanonicalisation:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_independent_of_insertion_order(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_key_sensitive_to_values(self):
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_record_round_trips_through_json_line(self):
        record = ResultRecord(
            key="k", config={"x": 1}, result={"counts": [1, 2, 3]}
        )
        assert ResultRecord.from_json_line(record.to_json_line()) == record


class TestCampaignStore:
    def test_put_and_get(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        record = store.put({"a": 1}, {"r": 2})
        assert record.key == content_key({"a": 1})
        assert store.get(record.key) == record
        assert record.key in store
        assert len(store) == 1

    def test_records_persist_across_reopen(self, tmp_path):
        directory = tmp_path / "camp"
        store = CampaignStore(directory)
        store.put({"a": 1}, {"r": 1})
        store.put({"a": 2}, {"r": 2})
        reopened = CampaignStore(directory)
        assert len(reopened) == 2
        assert reopened.keys() == store.keys()
        assert [r.result for r in reopened.records()] == [{"r": 1}, {"r": 2}]

    def test_put_is_idempotent_for_identical_results(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        store.put({"a": 1}, {"r": 1})
        store.put({"a": 1}, {"r": 1})
        assert len(store) == 1
        lines = (tmp_path / "camp" / "records.jsonl").read_text().splitlines()
        assert len(lines) == 1

    def test_conflicting_result_raises(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        store.put({"a": 1}, {"r": 1})
        with pytest.raises(StoreIntegrityError):
            store.put({"a": 1}, {"r": 999})

    def test_query_filters_on_config_fields(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        store.put({"scenario": "burst", "seed": 0}, {"r": 1})
        store.put({"scenario": "burst", "seed": 1}, {"r": 2})
        store.put({"scenario": "uniform-random", "seed": 0}, {"r": 3})
        assert len(store.query(scenario="burst")) == 2
        assert len(store.query(scenario="burst", seed=1)) == 1
        assert len(store.query(predicate=lambda r: r.result["r"] > 1)) == 2

    def test_store_file_is_canonical_json_lines(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        store.put({"b": 2, "a": 1}, {"z": 1, "y": 2})
        line = (tmp_path / "camp" / "records.jsonl").read_text().strip()
        assert line == canonical_json(json.loads(line))

    def test_directory_created_on_open(self, tmp_path):
        target = tmp_path / "nested" / "camp"
        CampaignStore(target)
        assert os.path.isdir(target)
