"""Tests for the content-addressed campaign store."""

import json
import multiprocessing
import os

import pytest

from repro.store import (
    CampaignStore,
    ResultRecord,
    StoreIntegrityError,
    canonical_json,
    content_key,
)


class TestCanonicalisation:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_independent_of_insertion_order(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_key_sensitive_to_values(self):
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_record_round_trips_through_json_line(self):
        record = ResultRecord(
            key="k", config={"x": 1}, result={"counts": [1, 2, 3]}
        )
        assert ResultRecord.from_json_line(record.to_json_line()) == record


class TestCampaignStore:
    def test_put_and_get(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        record = store.put({"a": 1}, {"r": 2})
        assert record.key == content_key({"a": 1})
        assert store.get(record.key) == record
        assert record.key in store
        assert len(store) == 1

    def test_records_persist_across_reopen(self, tmp_path):
        directory = tmp_path / "camp"
        store = CampaignStore(directory)
        store.put({"a": 1}, {"r": 1})
        store.put({"a": 2}, {"r": 2})
        reopened = CampaignStore(directory)
        assert len(reopened) == 2
        assert reopened.keys() == store.keys()
        assert [r.result for r in reopened.records()] == [{"r": 1}, {"r": 2}]

    def test_put_is_idempotent_for_identical_results(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        store.put({"a": 1}, {"r": 1})
        store.put({"a": 1}, {"r": 1})
        assert len(store) == 1
        lines = (tmp_path / "camp" / "records.jsonl").read_text().splitlines()
        assert len(lines) == 1

    def test_conflicting_result_raises(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        store.put({"a": 1}, {"r": 1})
        with pytest.raises(StoreIntegrityError):
            store.put({"a": 1}, {"r": 999})

    def test_query_filters_on_config_fields(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        store.put({"scenario": "burst", "seed": 0}, {"r": 1})
        store.put({"scenario": "burst", "seed": 1}, {"r": 2})
        store.put({"scenario": "uniform-random", "seed": 0}, {"r": 3})
        assert len(store.query(scenario="burst")) == 2
        assert len(store.query(scenario="burst", seed=1)) == 1
        assert len(store.query(predicate=lambda r: r.result["r"] > 1)) == 2

    def test_store_file_is_canonical_json_lines(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        store.put({"b": 2, "a": 1}, {"z": 1, "y": 2})
        line = (tmp_path / "camp" / "records.jsonl").read_text().strip()
        assert line == canonical_json(json.loads(line))

    def test_directory_created_on_open(self, tmp_path):
        target = tmp_path / "nested" / "camp"
        CampaignStore(target)
        assert os.path.isdir(target)


class TestCrashRecovery:
    """A writer killed mid-append must not make the store unopenable."""

    @staticmethod
    def _populated(directory, count=3):
        store = CampaignStore(directory)
        for index in range(count):
            store.put({"cell": index}, {"r": index * 10})
        return directory / "records.jsonl"

    def test_torn_trailing_line_is_truncated_and_resumes(self, tmp_path):
        records = self._populated(tmp_path / "camp")
        intact = records.read_bytes()
        torn_at = intact.rstrip(b"\n").rfind(b"\n") + 1
        # Crash mid-append: the last record only half made it to disk.
        records.write_bytes(intact[: torn_at + 17])

        reopened = CampaignStore(tmp_path / "camp")
        assert len(reopened) == 2
        # The torn tail is gone from disk, so a fresh append lands cleanly...
        assert records.read_bytes() == intact[:torn_at]
        reopened.put({"cell": 2}, {"r": 20})
        # ...and the repaired store ends up byte-identical to the uncrashed one.
        assert records.read_bytes() == intact

    def test_complete_tail_missing_only_newline_is_kept(self, tmp_path):
        records = self._populated(tmp_path / "camp")
        intact = records.read_bytes()
        records.write_bytes(intact[:-1])  # crash ate just the final "\n"

        reopened = CampaignStore(tmp_path / "camp")
        assert len(reopened) == 3
        assert reopened.get(content_key({"cell": 2})).result == {"r": 20}
        assert records.read_bytes() == intact

    def test_torn_line_before_the_tail_is_real_corruption(self, tmp_path):
        records = self._populated(tmp_path / "camp")
        lines = records.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:25] + b"\n"
        records.write_bytes(b"".join(lines))
        with pytest.raises(StoreIntegrityError, match="unparseable"):
            CampaignStore(tmp_path / "camp")

    def test_key_config_mismatch_fails_loudly(self, tmp_path):
        records = self._populated(tmp_path / "camp")
        payload = json.loads(records.read_bytes().splitlines()[0])
        payload["config"] = {"cell": "tampered"}
        doctored = canonical_json(payload).encode() + b"\n"
        with open(records, "r+b") as handle:
            original = handle.read()
        records.write_bytes(doctored + b"".join(original.splitlines(keepends=True)[1:]))
        with pytest.raises(StoreIntegrityError, match="content address"):
            CampaignStore(tmp_path / "camp")

    def test_conflicting_results_for_one_key_fail_loudly(self, tmp_path):
        records = self._populated(tmp_path / "camp")
        conflicting = ResultRecord(
            key=content_key({"cell": 0}), config={"cell": 0}, result={"r": 999}
        )
        with open(records, "ab") as handle:
            handle.write(conflicting.to_json_line().encode() + b"\n")
        with pytest.raises(StoreIntegrityError, match="two different results"):
            CampaignStore(tmp_path / "camp")

    def test_tampered_tail_without_newline_fails_loudly(self, tmp_path):
        # A torn append can never fully parse, so a parseable tail whose key
        # fails verification is tampering, not crash damage — it must not be
        # silently truncated away.
        records = self._populated(tmp_path / "camp")
        lines = records.read_bytes().splitlines(keepends=True)
        payload = json.loads(lines[-1])
        payload["config"] = {"cell": "tampered"}
        records.write_bytes(
            b"".join(lines[:-1]) + canonical_json(payload).encode()
        )
        with pytest.raises(StoreIntegrityError, match="content address"):
            CampaignStore(tmp_path / "camp")

    def test_non_object_json_line_fails_loudly(self, tmp_path):
        records = self._populated(tmp_path / "camp")
        with open(records, "ab") as handle:
            handle.write(b"null\n")
        with pytest.raises(StoreIntegrityError, match="unparseable"):
            CampaignStore(tmp_path / "camp")

    def test_whitespace_tail_is_absorbed(self, tmp_path):
        records = self._populated(tmp_path / "camp")
        with open(records, "ab") as handle:
            handle.write(b"  ")
        assert len(CampaignStore(tmp_path / "camp")) == 3


def _hammer_store(directory, writer_id, keys_per_writer, shared_keys, barrier):
    """Open an independent store handle and race puts against siblings."""
    store = CampaignStore(directory)
    barrier.wait()
    for index in range(keys_per_writer):
        store.put({"writer": writer_id, "cell": index}, {"r": index})
    for index in range(shared_keys):
        # Every writer also commits the same shared cells with identical
        # results — the refresh-under-lock protocol must dedupe them.
        store.put({"shared": index}, {"r": index * 7})


class TestConcurrentWriters:
    def test_two_writers_produce_no_torn_or_duplicate_records(self, tmp_path):
        directory = tmp_path / "camp"
        CampaignStore(directory)
        keys_per_writer, shared_keys = 40, 15
        barrier = multiprocessing.Barrier(2)
        workers = [
            multiprocessing.Process(
                target=_hammer_store,
                args=(directory, writer, keys_per_writer, shared_keys, barrier),
            )
            for writer in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0

        raw = (directory / "records.jsonl").read_bytes()
        assert raw.endswith(b"\n")
        lines = raw.splitlines()
        # Every line parses and key-verifies: nothing interleaved, nothing torn.
        records = [ResultRecord.from_json_line(line.decode()) for line in lines]
        for record in records:
            assert record.key == content_key(record.config)
        # Exactly one line per unique cell, shared cells included.
        assert len(lines) == 2 * keys_per_writer + shared_keys
        assert len({record.key for record in records}) == len(lines)

        reopened = CampaignStore(directory)
        assert len(reopened) == len(lines)
        for index in range(shared_keys):
            assert reopened.get(content_key({"shared": index})).result == {
                "r": index * 7
            }

class TestLockTimeout:
    """A wedged peer must surface as a clear error, not an eternal hang."""

    def test_put_times_out_against_a_held_lock(self, tmp_path):
        from repro.store import StoreLockTimeoutError, store_lock

        store = CampaignStore(tmp_path, lock_timeout_s=0.2)
        # flock conflicts across file descriptors even within one process,
        # so holding the lock here is indistinguishable from a wedged peer.
        with store_lock(tmp_path):
            with pytest.raises(StoreLockTimeoutError) as excinfo:
                store.put({"kind": "x"}, {"ok": True})
        error = excinfo.value
        assert error.waited_s >= 0.2
        assert str(tmp_path / "records.lock") == error.lock_path
        assert "REPRO_STORE_LOCK_TIMEOUT" in str(error)

    def test_timeout_error_is_a_store_error(self):
        from repro.exceptions import ReproError
        from repro.store import StoreError, StoreLockTimeoutError

        assert issubclass(StoreLockTimeoutError, StoreError)
        assert issubclass(StoreIntegrityError, StoreError)
        assert issubclass(StoreError, ReproError)

    def test_env_var_overrides_default(self, monkeypatch):
        from repro.store import (
            DEFAULT_LOCK_TIMEOUT_S,
            LOCK_TIMEOUT_ENV,
            resolve_lock_timeout,
        )

        assert resolve_lock_timeout(None) == DEFAULT_LOCK_TIMEOUT_S
        assert resolve_lock_timeout(7.5) == 7.5
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "0.25")
        assert resolve_lock_timeout(None) == 0.25
        # an explicit argument still beats the environment
        assert resolve_lock_timeout(3.0) == 3.0

    def test_bad_env_values_raise_clear_errors(self, monkeypatch):
        from repro.store import LOCK_TIMEOUT_ENV, StoreError, resolve_lock_timeout

        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "not-a-number")
        with pytest.raises(StoreError, match="not-a-number"):
            resolve_lock_timeout(None)
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "-1")
        with pytest.raises(StoreError, match="positive"):
            resolve_lock_timeout(None)

    def test_lock_wait_counters_recorded_when_traced(self, tmp_path):
        from repro.obs import TRACER

        store = CampaignStore(tmp_path)
        TRACER.enable()
        try:
            store.put({"kind": "x"}, {"ok": True})
            counters = TRACER.counter_totals()
        finally:
            TRACER.disable()
        assert counters["store.lock_acquisitions"] >= 1
        assert counters["store.appends"] == 1
        assert counters["store.fsync_s"] >= 0
