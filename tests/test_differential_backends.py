"""Differential test suite: ``packed`` backend vs the ``reference`` oracle.

The bit-packed GF(2) fast path is a correctness-critical rewrite of the
numerical core, so every public batched operation is checked for bit-exact
equivalence against the uint8 reference implementation — across code sizes,
batch shapes and degenerate edge cases, and end to end through miscorrection
profiling and BEER recovery.
"""

import numpy as np
import pytest

from repro.gf2 import GF2Matrix, GF2Vector
from repro.ecc import SystematicLinearCode, random_hamming_code
from repro.ecc.codespace import codes_equivalent
from repro.ecc.decoder import SyndromeDecoder
from repro.ecc.hamming import min_parity_bits
from repro.einsim import (
    BACKENDS,
    DataRetentionInjector,
    EinsimSimulator,
    FixedErrorCountInjector,
    UniformRandomInjector,
    bulk_decode,
    bulk_encode,
    bulk_syndrome_values,
    resolve_backend,
)
from repro.core import (
    BeerSolver,
    MonteCarloCampaign,
    charged_patterns,
    expected_miscorrection_profile,
    monte_carlo_miscorrection_profile,
)
from repro.dram import ChipGeometry, VENDOR_A, VENDOR_B, VENDOR_C
from repro.dram.retention import DataRetentionModel, RetentionCalibration


#: (k, seed) pairs spanning small codes up to the paper's (136, 128) words.
CODE_SIZES = [(4, 0), (8, 1), (16, 2), (32, 3), (57, 4), (64, 5), (128, 6)]

BATCH_SHAPES = [0, 1, 7, 64, 257]


def _code(num_data_bits, seed):
    return random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))


def _random_words(code, batch, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(batch, code.codeword_length)).astype(np.uint8)


class TestBackendResolution:
    def test_valid_backends(self):
        assert resolve_backend("reference") == "reference"
        assert resolve_backend("packed") == "packed"
        assert resolve_backend("auto") in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("z3")


class TestBulkEncodeDifferential:
    @pytest.mark.parametrize("num_data_bits,code_seed", CODE_SIZES)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_packed_matches_reference(self, num_data_bits, code_seed, batch):
        code = _code(num_data_bits, code_seed)
        rng = np.random.default_rng(code_seed + batch)
        datawords = rng.integers(0, 2, size=(batch, num_data_bits)).astype(np.uint8)
        reference = bulk_encode(code, datawords, "reference")
        packed = bulk_encode(code, datawords, "packed")
        assert np.array_equal(reference, packed)

    @pytest.mark.parametrize("num_data_bits,code_seed", CODE_SIZES[:4])
    def test_both_match_per_word_encode(self, num_data_bits, code_seed):
        code = _code(num_data_bits, code_seed)
        rng = np.random.default_rng(code_seed)
        datawords = rng.integers(0, 2, size=(16, num_data_bits)).astype(np.uint8)
        expected = np.vstack(
            [code.encode(GF2Vector(row)).to_numpy() for row in datawords]
        )
        for backend in BACKENDS:
            assert np.array_equal(bulk_encode(code, datawords, backend), expected)


class TestBulkSyndromeDifferential:
    @pytest.mark.parametrize("num_data_bits,code_seed", CODE_SIZES)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_packed_matches_reference(self, num_data_bits, code_seed, batch):
        code = _code(num_data_bits, code_seed)
        words = _random_words(code, batch, code_seed * 13 + batch)
        reference = bulk_syndrome_values(code, words, "reference")
        packed = bulk_syndrome_values(code, words, "packed")
        assert np.array_equal(reference, packed)

    @pytest.mark.parametrize("num_data_bits,code_seed", CODE_SIZES[:4])
    def test_both_match_per_word_syndrome(self, num_data_bits, code_seed):
        code = _code(num_data_bits, code_seed)
        words = _random_words(code, 32, code_seed)
        expected = np.array(
            [code.syndrome(GF2Vector(w)).to_int() for w in words], dtype=np.int64
        )
        for backend in BACKENDS:
            assert np.array_equal(bulk_syndrome_values(code, words, backend), expected)


class TestBulkDecodeDifferential:
    @pytest.mark.parametrize("num_data_bits,code_seed", CODE_SIZES)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_packed_matches_reference(self, num_data_bits, code_seed, batch):
        code = _code(num_data_bits, code_seed)
        words = _random_words(code, batch, code_seed * 17 + batch)
        reference = bulk_decode(code, words, "reference")
        packed = bulk_decode(code, words, "packed")
        assert np.array_equal(reference, packed)

    @pytest.mark.parametrize("num_data_bits,code_seed", CODE_SIZES[:5])
    def test_both_match_per_word_decoder(self, num_data_bits, code_seed):
        code = _code(num_data_bits, code_seed)
        decoder = SyndromeDecoder(code)
        words = _random_words(code, 64, code_seed * 19)
        expected = np.vstack(
            [decoder.decode(GF2Vector(w)).corrected_codeword.to_numpy() for w in words]
        )
        for backend in BACKENDS:
            assert np.array_equal(bulk_decode(code, words, backend), expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_syndrome_words_untouched(self, backend):
        code = _code(16, 0)
        datawords = np.eye(16, dtype=np.uint8)
        codewords = bulk_encode(code, datawords, backend)
        assert np.array_equal(bulk_decode(code, codewords, backend), codewords)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_errors_all_corrected(self, backend):
        code = _code(32, 2)
        codeword = code.encode(GF2Vector.ones(32)).to_numpy()
        received = np.tile(codeword, (code.codeword_length, 1))
        for position in range(code.codeword_length):
            received[position, position] ^= 1
        corrected = bulk_decode(code, received, backend)
        assert np.array_equal(corrected, np.tile(codeword, (code.codeword_length, 1)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_degenerate_duplicate_column_code(self, backend):
        # A non-SEC code with duplicated H columns: bulk decode must agree
        # with the word-by-word decoder (lowest matching column wins).
        code = SystematicLinearCode(GF2Matrix([[1, 1, 0], [1, 1, 1]]))
        decoder = SyndromeDecoder(code)
        words = _random_words(code, 32, 23)
        expected = np.vstack(
            [decoder.decode(GF2Vector(w)).corrected_codeword.to_numpy() for w in words]
        )
        assert np.array_equal(bulk_decode(code, words, backend), expected)


class TestSimulatorDifferential:
    @pytest.mark.parametrize("num_data_bits,code_seed", [(8, 0), (16, 1), (32, 2)])
    @pytest.mark.parametrize(
        "injector",
        [
            UniformRandomInjector(0.01),
            DataRetentionInjector(0.05),
            FixedErrorCountInjector(2),
        ],
        ids=["uniform", "retention", "fixed-count"],
    )
    def test_full_simulation_results_identical(self, num_data_bits, code_seed, injector):
        code = _code(num_data_bits, code_seed)
        results = {}
        for backend in BACKENDS:
            simulator = EinsimSimulator(code, seed=99, backend=backend)
            results[backend] = simulator.simulate(
                GF2Vector.ones(num_data_bits), 3000, injector, batch_size=1024
            )
        reference, packed = results["reference"], results["packed"]
        assert np.array_equal(
            reference.post_correction_error_counts, packed.post_correction_error_counts
        )
        assert np.array_equal(
            reference.pre_correction_error_counts, packed.pre_correction_error_counts
        )
        assert reference.uncorrectable_words == packed.uncorrectable_words
        assert reference.miscorrected_words == packed.miscorrected_words
        assert reference.miscorrection_positions == packed.miscorrection_positions


class TestProfileDifferential:
    @pytest.mark.parametrize("num_data_bits,code_seed", [(8, 3), (16, 4), (32, 5)])
    def test_monte_carlo_profiles_identical(self, num_data_bits, code_seed):
        code = _code(num_data_bits, code_seed)
        patterns = list(charged_patterns(num_data_bits, [1, 2]))[:40]
        profiles = {
            backend: monte_carlo_miscorrection_profile(
                code,
                patterns,
                bit_error_rate=0.3,
                words_per_pattern=400,
                rng=np.random.default_rng(code_seed),
                backend=backend,
            )
            for backend in BACKENDS
        }
        assert profiles["reference"] == profiles["packed"]

    @pytest.mark.parametrize("num_data_bits,code_seed", [(8, 6), (16, 7)])
    def test_campaign_profiles_identical_and_converge(self, num_data_bits, code_seed):
        code = _code(num_data_bits, code_seed)
        patterns = list(charged_patterns(num_data_bits, [1, 2]))[:40]
        profiles = {
            backend: MonteCarloCampaign(
                code, chunk_size=512, backend=backend, base_seed=code_seed
            ).miscorrection_profile(patterns, 0.5, 3000)
            for backend in BACKENDS
        }
        assert profiles["reference"] == profiles["packed"]
        expected = expected_miscorrection_profile(code, patterns)
        assert profiles["packed"] == expected


class TestEndToEndBeerDifferential:
    @pytest.mark.parametrize("num_data_bits,code_seed", [(8, 8), (16, 9)])
    def test_beer_recovers_code_from_packed_profile(self, num_data_bits, code_seed):
        code = _code(num_data_bits, code_seed)
        patterns = list(charged_patterns(num_data_bits, [1, 2]))
        profile = MonteCarloCampaign(
            code, chunk_size=1024, backend="packed", base_seed=code_seed
        ).miscorrection_profile(patterns, 0.5, 4000)
        solver = BeerSolver(num_data_bits, min_parity_bits(num_data_bits))
        solution = solver.solve(profile)
        assert solution.num_solutions == 1
        assert codes_equivalent(solution.codes[0], code)

    @pytest.mark.parametrize("vendor", [VENDOR_A, VENDOR_B, VENDOR_C])
    def test_chip_campaign_identical_across_backends(self, vendor):
        fast_retention = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))
        readings = {}
        for backend in BACKENDS:
            chip = vendor.make_chip(
                num_data_bits=8,
                geometry=ChipGeometry(num_rows=8, words_per_row=4),
                seed=7,
                retention_model=fast_retention,
                backend=backend,
            )
            assert chip.backend == backend
            chip.fill(GF2Vector.ones(8))
            chip.pause_refresh(120.0, 80.0)
            readings[backend] = chip.read_all_datawords()
        assert np.array_equal(readings["reference"], readings["packed"])
