"""Unit tests for the CNF container and DIMACS IO."""

import io

import pytest

from repro.exceptions import SolverError
from repro.sat import CNF, read_dimacs, write_dimacs


class TestCNF:
    def test_variable_allocation(self):
        formula = CNF()
        assert formula.new_variable() == 1
        assert formula.new_variable() == 2
        assert formula.new_variables(3) == [3, 4, 5]
        assert formula.num_variables == 5

    def test_negative_initial_variables_rejected(self):
        with pytest.raises(SolverError):
            CNF(-1)

    def test_negative_allocation_rejected(self):
        with pytest.raises(SolverError):
            CNF().new_variables(-1)

    def test_add_clause_extends_variable_pool(self):
        formula = CNF()
        formula.add_clause([1, -4])
        assert formula.num_variables == 4
        assert formula.clauses == [(1, -4)]

    def test_empty_clause_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([])

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([1, 0])

    def test_add_unit_and_clauses(self):
        formula = CNF()
        formula.add_unit(3)
        formula.add_clauses([[1, 2], [-1, -2]])
        assert formula.num_clauses == 3

    def test_evaluate(self):
        formula = CNF()
        formula.add_clauses([[1, 2], [-1, 2]])
        assert formula.evaluate([False, True])
        assert not formula.evaluate([True, False])

    def test_evaluate_short_assignment_rejected(self):
        formula = CNF()
        formula.add_clause([1, 2, 3])
        with pytest.raises(SolverError):
            formula.evaluate([True])

    def test_copy_is_independent(self):
        formula = CNF()
        formula.add_clause([1, 2])
        duplicate = formula.copy()
        duplicate.add_clause([-1])
        assert formula.num_clauses == 1
        assert duplicate.num_clauses == 2

    def test_repr(self):
        formula = CNF()
        formula.add_clause([1, -2])
        assert "clauses=1" in repr(formula)


class TestDimacs:
    EXAMPLE = """c example instance
p cnf 3 2
1 -2 0
2 3 0
"""

    def test_read_from_string(self):
        formula = read_dimacs(self.EXAMPLE)
        assert formula.num_variables == 3
        assert formula.clauses == [(1, -2), (2, 3)]

    def test_read_from_stream(self):
        formula = read_dimacs(io.StringIO(self.EXAMPLE))
        assert formula.num_clauses == 2

    def test_read_from_file(self, tmp_path):
        path = tmp_path / "instance.cnf"
        path.write_text(self.EXAMPLE)
        formula = read_dimacs(path)
        assert formula.num_variables == 3

    def test_round_trip(self):
        formula = read_dimacs(self.EXAMPLE)
        text = write_dimacs(formula)
        again = read_dimacs(text)
        assert again.clauses == formula.clauses
        assert again.num_variables == formula.num_variables

    def test_write_to_file(self, tmp_path):
        formula = read_dimacs(self.EXAMPLE)
        path = tmp_path / "out.cnf"
        write_dimacs(formula, path)
        assert read_dimacs(path).clauses == formula.clauses

    def test_missing_problem_line_rejected(self):
        with pytest.raises(SolverError):
            read_dimacs("1 2 0\n")

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(SolverError):
            read_dimacs("p sat 3 2\n1 2 0\n")

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(SolverError):
            read_dimacs("p cnf 2 5\n1 2 0\n")

    def test_variable_overflow_rejected(self):
        with pytest.raises(SolverError):
            read_dimacs("p cnf 1 1\n1 2 0\n")

    def test_header_declares_unused_variables(self):
        formula = read_dimacs("p cnf 5 1\n1 2 0\n")
        assert formula.num_variables == 5

    def test_clause_spanning_multiple_lines(self):
        formula = read_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert formula.clauses == [(1, 2, 3)]
