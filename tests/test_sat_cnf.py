"""Unit tests for the CNF container and DIMACS IO."""

import io

import pytest

from repro.exceptions import SolverError
from repro.sat import CNF, read_dimacs, write_dimacs


class TestCNF:
    def test_variable_allocation(self):
        formula = CNF()
        assert formula.new_variable() == 1
        assert formula.new_variable() == 2
        assert formula.new_variables(3) == [3, 4, 5]
        assert formula.num_variables == 5

    def test_negative_initial_variables_rejected(self):
        with pytest.raises(SolverError):
            CNF(-1)

    def test_negative_allocation_rejected(self):
        with pytest.raises(SolverError):
            CNF().new_variables(-1)

    def test_add_clause_extends_variable_pool(self):
        formula = CNF()
        formula.add_clause([1, -4])
        assert formula.num_variables == 4
        assert formula.clauses == [(1, -4)]

    def test_empty_clause_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([])

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([1, 0])

    def test_add_unit_and_clauses(self):
        formula = CNF()
        formula.add_unit(3)
        formula.add_clauses([[1, 2], [-1, -2]])
        assert formula.num_clauses == 3

    def test_evaluate(self):
        formula = CNF()
        formula.add_clauses([[1, 2], [-1, 2]])
        assert formula.evaluate([False, True])
        assert not formula.evaluate([True, False])

    def test_evaluate_short_assignment_rejected(self):
        formula = CNF()
        formula.add_clause([1, 2, 3])
        with pytest.raises(SolverError):
            formula.evaluate([True])

    def test_copy_is_independent(self):
        formula = CNF()
        formula.add_clause([1, 2])
        duplicate = formula.copy()
        duplicate.add_clause([-1])
        assert formula.num_clauses == 1
        assert duplicate.num_clauses == 2

    def test_repr(self):
        formula = CNF()
        formula.add_clause([1, -2])
        assert "clauses=1" in repr(formula)


class TestDimacs:
    EXAMPLE = """c example instance
p cnf 3 2
1 -2 0
2 3 0
"""

    def test_read_from_string(self):
        formula = read_dimacs(self.EXAMPLE)
        assert formula.num_variables == 3
        assert formula.clauses == [(1, -2), (2, 3)]

    def test_read_from_stream(self):
        formula = read_dimacs(io.StringIO(self.EXAMPLE))
        assert formula.num_clauses == 2

    def test_read_from_file(self, tmp_path):
        path = tmp_path / "instance.cnf"
        path.write_text(self.EXAMPLE)
        formula = read_dimacs(path)
        assert formula.num_variables == 3

    def test_round_trip(self):
        formula = read_dimacs(self.EXAMPLE)
        text = write_dimacs(formula)
        again = read_dimacs(text)
        assert again.clauses == formula.clauses
        assert again.num_variables == formula.num_variables

    def test_write_to_file(self, tmp_path):
        formula = read_dimacs(self.EXAMPLE)
        path = tmp_path / "out.cnf"
        write_dimacs(formula, path)
        assert read_dimacs(path).clauses == formula.clauses

    def test_missing_problem_line_rejected(self):
        with pytest.raises(SolverError):
            read_dimacs("1 2 0\n")

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(SolverError):
            read_dimacs("p sat 3 2\n1 2 0\n")

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(SolverError):
            read_dimacs("p cnf 2 5\n1 2 0\n")

    def test_variable_overflow_rejected(self):
        with pytest.raises(SolverError):
            read_dimacs("p cnf 1 1\n1 2 0\n")

    def test_header_declares_unused_variables(self):
        formula = read_dimacs("p cnf 5 1\n1 2 0\n")
        assert formula.num_variables == 5

    def test_clause_spanning_multiple_lines(self):
        formula = read_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert formula.clauses == [(1, 2, 3)]


class TestDimacsHardening:
    """Edge cases the round-trip property test shook out of the parser."""

    def test_explicit_empty_clause_rejected(self):
        with pytest.raises(SolverError, match="empty clause"):
            read_dimacs("p cnf 2 1\n0\n")

    def test_duplicate_problem_line_rejected(self):
        with pytest.raises(SolverError, match="duplicate problem line"):
            read_dimacs("p cnf 2 1\np cnf 2 1\n1 2 0\n")

    def test_invalid_literal_token_rejected(self):
        with pytest.raises(SolverError, match="invalid literal"):
            read_dimacs("p cnf 2 1\n1 two 0\n")

    def test_satlib_percent_terminator(self):
        formula = read_dimacs("p cnf 2 2\n1 2 0\n-1 -2 0\n%\n0\n\n")
        assert formula.clauses == [(1, 2), (-1, -2)]

    def test_unterminated_clause_before_percent_rejected(self):
        with pytest.raises(SolverError, match="not terminated"):
            read_dimacs("p cnf 2 1\n1 2\n%\n0\n")

    def test_missing_trailing_zero_at_eof(self):
        formula = read_dimacs("p cnf 3 2\n1 -2 0\n2 3")
        assert formula.clauses == [(1, -2), (2, 3)]

    def test_clause_spanning_lines_and_sharing_lines(self):
        formula = read_dimacs("p cnf 4 3\n1\n2 0 3 4 0\n-1 -3\n0\n")
        assert formula.clauses == [(1, 2), (3, 4), (-1, -3)]

    def test_comments_and_blank_lines_anywhere(self):
        text = "c head\n\np cnf 2 1\nc mid\n\n1 2 0\nc tail\n\n"
        assert read_dimacs(text).clauses == [(1, 2)]


def _random_cnf(rng: "np.random.Generator", max_vars: int = 8) -> CNF:
    """A random non-trivial CNF (no tautologies/duplicates after hygiene)."""
    formula = CNF(int(rng.integers(1, max_vars + 1)))
    for _ in range(int(rng.integers(0, 10))):
        width = int(rng.integers(1, min(5, formula.num_variables + 1)))
        variables = rng.choice(formula.num_variables, size=width, replace=False)
        literals = [int(v) + 1 if rng.random() < 0.5 else -(int(v) + 1)
                    for v in variables]
        formula.add_clause(literals)
    return formula


def _scramble_dimacs(text: str, rng: "np.random.Generator") -> str:
    """Reformat DIMACS text without changing its meaning.

    Inserts comments and blank lines, splits clause lines at token
    boundaries, and merges adjacent clause lines — the liberal-input space
    read_dimacs() promises to accept.
    """
    header, *clause_lines = text.strip().split("\n")
    tokens = " ".join(clause_lines).split()
    lines = [header]
    current: list = []
    for token in tokens:
        current.append(token)
        if rng.random() < 0.3:
            lines.append(" ".join(current))
            current = []
        if rng.random() < 0.2:
            lines.append(rng.choice(["", "c noise", "c 1 2 0"]))
    if current:
        lines.append(" ".join(current))
    if rng.random() < 0.5 and lines[-1].endswith(" 0"):
        lines[-1] = lines[-1][: -len(" 0")]  # drop the final terminator
    return "\n".join(lines) + "\n"


class TestDimacsRoundTripProperty:
    def test_round_trip_preserves_random_cnfs(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(200):
            formula = _random_cnf(rng)
            again = read_dimacs(write_dimacs(formula))
            assert again.clauses == formula.clauses
            assert again.num_variables == formula.num_variables

    def test_round_trip_survives_reformatting(self):
        import numpy as np

        rng = np.random.default_rng(1)
        for _ in range(200):
            formula = _random_cnf(rng)
            if formula.num_clauses == 0:
                continue  # scrambling needs at least one clause line
            scrambled = _scramble_dimacs(write_dimacs(formula), rng)
            again = read_dimacs(scrambled)
            assert again.clauses == formula.clauses
            assert again.num_variables == formula.num_variables

    def test_round_trip_through_file(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(2)
        for index in range(20):
            formula = _random_cnf(rng)
            path = tmp_path / f"case_{index}.cnf"
            write_dimacs(formula, path)
            assert read_dimacs(path).clauses == formula.clauses
