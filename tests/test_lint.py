"""Tests for repro.lint: rule fixtures, suppression hygiene, engine, CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.lint import (
    ALL_RULES,
    Finding,
    LintError,
    PARSE_ERROR_CODE,
    SUPPRESSION_CODE,
    counts_by_code,
    discover_files,
    lint_paths,
    lint_source,
    select_rules,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: Synthetic paths under which each fixture is linted: path-scoped rules
#: (RPR103 hot packages, RPR104 store module, RPR106 library) key off them.
FIXTURE_PATHS = {
    "rpr101": "src/repro/scenarios/fixture.py",
    "rpr102": "src/repro/analysis/fixture.py",
    "rpr103": "src/repro/sat/fixture.py",
    "rpr104_bad": "src/repro/scenarios/fixture.py",
    "rpr104_good": "src/repro/store/store.py",
    "rpr105": "src/repro/scenarios/fixture.py",
    "rpr106": "src/repro/analysis/fixture.py",
    "rpr107": "src/repro/einsim/fused.py",
}


def rule_for(code):
    (rule,) = [rule for rule in ALL_RULES if rule.code == code]
    return rule


def lint_fixture(name, code):
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    path = FIXTURE_PATHS.get(name) or FIXTURE_PATHS[name.split("_")[0]]
    return lint_source(source, path, [rule_for(code)])


class TestRuleFixtures:
    """Every rule: at least one positive and one negative fixture."""

    @pytest.mark.parametrize(
        "code",
        ["RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106", "RPR107"],
    )
    def test_bad_fixture_is_flagged(self, code):
        findings = lint_fixture(f"{code.lower()}_bad", code)
        assert findings, f"{code} positive fixture produced no findings"
        assert {finding.code for finding in findings} == {code}

    @pytest.mark.parametrize(
        "code",
        ["RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106", "RPR107"],
    )
    def test_good_fixture_is_clean(self, code):
        findings = lint_fixture(f"{code.lower()}_good", code)
        assert findings == [], [finding.format() for finding in findings]

    def test_rpr101_counts(self):
        findings = lint_fixture("rpr101_bad", "RPR101")
        # for-loop, list(), join, comprehension, listdir loop, glob list
        assert len(findings) == 6

    def test_rpr102_flags_every_entropy_source(self):
        findings = lint_fixture("rpr102_bad", "RPR102")
        messages = " ".join(finding.message for finding in findings)
        for needle in ("time.time", "uuid", "Mersenne", "hash()", "seed"):
            assert needle in messages
        assert len(findings) == 10

    def test_rpr103_only_binds_in_hot_packages(self):
        source = (FIXTURES / "rpr103_bad.py").read_text(encoding="utf-8")
        outside = lint_source(
            source, "src/repro/scenarios/fixture.py", [rule_for("RPR103")]
        )
        assert outside == []

    def test_rpr105_counts(self):
        findings = lint_fixture("rpr105_bad", "RPR105")
        # lambda, bound method, nested def, nested pool, processes=4
        assert len(findings) == 5

    def test_rpr106_not_applied_outside_library(self):
        source = (FIXTURES / "rpr106_bad.py").read_text(encoding="utf-8")
        outside = lint_source(source, "tools/script.py", [rule_for("RPR106")])
        assert outside == []

    def test_rpr107_counts(self):
        findings = lint_fixture("rpr107_bad", "RPR107")
        # np.unpackbits, unpack_rows, aliased unpack_vector
        assert len(findings) == 3

    def test_rpr107_only_binds_in_fused_modules(self):
        source = (FIXTURES / "rpr107_bad.py").read_text(encoding="utf-8")
        for path in (
            "src/repro/einsim/engine.py",  # staged kernels may unpack
            "src/repro/analysis/figures.py",
            "tools/script.py",
        ):
            assert lint_source(source, path, [rule_for("RPR107")]) == []
        native = lint_source(
            source, "src/repro/gf2/native.py", [rule_for("RPR107")]
        )
        assert {finding.code for finding in native} == {"RPR107"}

    def test_rpr103_binds_in_fused_module(self):
        # The fused module lives under einsim/, an RPR103 hot package: an
        # unguarded tracer call there must be flagged.
        source = (FIXTURES / "rpr103_bad.py").read_text(encoding="utf-8")
        findings = lint_source(
            source, "src/repro/einsim/fused.py", [rule_for("RPR103")]
        )
        assert findings and {finding.code for finding in findings} == {"RPR103"}


class TestSuppression:
    def test_suppression_with_reason_silences_finding(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: ignore[RPR102] -- wall clock wanted here\n"
        )
        findings = lint_source(source, "src/repro/x.py", [rule_for("RPR102")])
        assert findings == []

    def test_suppression_without_reason_is_flagged(self):
        source = "import time\nt = time.time()  # repro-lint: ignore[RPR102]\n"
        findings = lint_source(source, "src/repro/x.py", [rule_for("RPR102")])
        assert [finding.code for finding in findings] == [SUPPRESSION_CODE]
        assert "no reason" in findings[0].message

    def test_unused_suppression_is_flagged(self):
        source = "x = 1  # repro-lint: ignore[RPR102] -- stale leftover\n"
        findings = lint_source(source, "src/repro/x.py", [rule_for("RPR102")])
        assert [finding.code for finding in findings] == [SUPPRESSION_CODE]
        assert "unused suppression" in findings[0].message

    def test_unused_check_skipped_for_inactive_rules(self):
        source = "x = 1  # repro-lint: ignore[RPR104] -- rule not selected\n"
        findings = lint_source(source, "src/repro/x.py", [rule_for("RPR102")])
        assert findings == []

    def test_multi_code_suppression(self):
        source = (
            "import time\n"
            "names = {'a', 'b'}\n"
            "t = [time.time() for n in names]"
            "  # repro-lint: ignore[RPR101, RPR102] -- demo of both\n"
        )
        findings = lint_source(
            source, "src/repro/x.py", [rule_for("RPR101"), rule_for("RPR102")]
        )
        assert findings == []

    def test_hash_comment_in_string_is_not_a_suppression(self):
        source = (
            'marker = "# repro-lint: ignore[RPR102] -- not a comment"\n'
            "import time\n"
            "t = time.time()\n"
        )
        findings = lint_source(source, "src/repro/x.py", [rule_for("RPR102")])
        assert [finding.code for finding in findings] == ["RPR102"]

    def test_no_suppression_checks_flag(self):
        source = "x = 1  # repro-lint: ignore[RPR102] -- stale\n"
        findings = lint_source(
            source,
            "src/repro/x.py",
            [rule_for("RPR102")],
            check_suppressions=False,
        )
        assert findings == []


class TestEngine:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n", "src/repro/x.py", ALL_RULES)
        assert [finding.code for finding in findings] == [PARSE_ERROR_CODE]

    def test_findings_sorted_and_formatted(self):
        finding = Finding(
            path="src/x.py", line=3, col=4, code="RPR101", message="msg"
        )
        assert finding.format() == "src/x.py:3:4: RPR101 msg"
        assert finding.to_dict()["line"] == 3

    def test_counts_by_code_sorted(self):
        findings = [
            Finding("p", 1, 0, "RPR106", "m"),
            Finding("p", 2, 0, "RPR101", "m"),
            Finding("p", 3, 0, "RPR106", "m"),
        ]
        assert counts_by_code(findings) == {"RPR101": 1, "RPR106": 2}

    def test_select_rules_filters(self):
        chosen = select_rules(ALL_RULES, select=["RPR101", "RPR106"])
        assert [rule.code for rule in chosen] == ["RPR101", "RPR106"]
        chosen = select_rules(ALL_RULES, ignore=["RPR103"])
        assert "RPR103" not in [rule.code for rule in chosen]

    def test_select_rules_unknown_code_raises(self):
        with pytest.raises(LintError):
            select_rules(ALL_RULES, select=["RPR999"])
        with pytest.raises(ReproError):
            select_rules(ALL_RULES, ignore=["bogus"])

    def test_discover_files_sorted_and_deduplicated(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        files = discover_files([str(tmp_path), str(tmp_path / "a.py")])
        assert [f.name for f in files] == ["a.py", "b.py", "c.py"]

    def test_discover_files_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError):
            discover_files([str(tmp_path / "absent")])

    def test_lint_paths_counts_files(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        findings, files_checked = lint_paths([str(tmp_path)], ALL_RULES)
        assert findings == []
        assert files_checked == 1


class TestCli:
    def test_clean_path_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_summary(self, capsys):
        code = main(["lint", str(FIXTURES / "rpr102_bad.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPR102" in out
        assert "finding(s)" in out

    def test_json_report_is_machine_readable(self, capsys):
        code = main(["lint", "--json", str(FIXTURES / "rpr102_bad.py")])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["files_checked"] == 1
        assert report["counts"]["RPR102"] == len(report["findings"])
        assert all(f["code"] for f in report["findings"])

    def test_select_limits_rules(self, capsys):
        code = main(
            ["lint", "--select", "RPR101", str(FIXTURES / "rpr102_bad.py")]
        )
        capsys.readouterr()
        assert code == 0  # entropy fixture has no iteration findings

    def test_unknown_code_exits_two(self, capsys):
        assert main(["lint", "--select", "RPR999", "src"]) == 2
        assert "unknown rule code" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert "repro lint:" in capsys.readouterr().out

    def test_explain_prints_rationale(self, capsys):
        assert main(["lint", "--explain", "RPR101"]) == 0
        out = capsys.readouterr().out
        assert "RPR101" in out and "sorted" in out

    def test_explain_unknown_code_exits_two(self, capsys):
        assert main(["lint", "--explain", "RPR999"]) == 2
        assert "known codes" in capsys.readouterr().out

    def test_every_rule_has_explanation_and_fixtures(self):
        for rule in ALL_RULES:
            assert rule.code.startswith("RPR1")
            assert rule.name and rule.summary and rule.explanation
            assert (FIXTURES / f"{rule.code.lower()}_bad.py").is_file()
            assert (FIXTURES / f"{rule.code.lower()}_good.py").is_file()
