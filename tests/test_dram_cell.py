"""Unit tests for DRAM cell encoding conventions."""

import pytest

from repro.dram import CellType, ChargeState, bit_for_charge_state, charge_state_for_bit
from repro.dram.cell import can_experience_retention_error, retention_error_value


class TestChargeStateMapping:
    def test_true_cell_one_is_charged(self):
        assert charge_state_for_bit(CellType.TRUE_CELL, 1) is ChargeState.CHARGED
        assert charge_state_for_bit(CellType.TRUE_CELL, 0) is ChargeState.DISCHARGED

    def test_anti_cell_zero_is_charged(self):
        assert charge_state_for_bit(CellType.ANTI_CELL, 0) is ChargeState.CHARGED
        assert charge_state_for_bit(CellType.ANTI_CELL, 1) is ChargeState.DISCHARGED

    def test_invalid_bit_value(self):
        with pytest.raises(ValueError):
            charge_state_for_bit(CellType.TRUE_CELL, 2)

    def test_round_trip_bit_to_state_to_bit(self):
        for cell_type in CellType:
            for bit in (0, 1):
                state = charge_state_for_bit(cell_type, bit)
                assert bit_for_charge_state(cell_type, state) == bit


class TestRetentionSemantics:
    def test_retention_error_value_is_discharged_readout(self):
        assert retention_error_value(CellType.TRUE_CELL) == 0
        assert retention_error_value(CellType.ANTI_CELL) == 1

    def test_only_charged_cells_can_fail(self):
        assert can_experience_retention_error(CellType.TRUE_CELL, 1)
        assert not can_experience_retention_error(CellType.TRUE_CELL, 0)
        assert can_experience_retention_error(CellType.ANTI_CELL, 0)
        assert not can_experience_retention_error(CellType.ANTI_CELL, 1)

    def test_failure_direction_is_towards_discharged_value(self):
        # A failing cell must end up at the value it would read when DISCHARGED,
        # i.e. a failure never recreates the originally stored value.
        for cell_type in CellType:
            for stored in (0, 1):
                if can_experience_retention_error(cell_type, stored):
                    assert retention_error_value(cell_type) != stored
