"""Unit tests for ECC-word and cell-type layouts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AddressError, ChipConfigurationError
from repro.dram import ByteInterleavedWordLayout, CellTypeLayout, CellType, SequentialWordLayout


class TestSequentialLayout:
    def test_mapping_within_first_word(self):
        layout = SequentialWordLayout(dataword_bytes=16)
        target = layout.bit_address(0, 0)
        assert target.word_index == 0
        assert target.bit_index == 0
        target = layout.bit_address(15, 7)
        assert target.word_index == 0
        assert target.bit_index == 127

    def test_mapping_to_second_word(self):
        layout = SequentialWordLayout(dataword_bytes=16)
        target = layout.bit_address(16, 0)
        assert target.word_index == 1
        assert target.bit_index == 0

    def test_round_trip(self):
        layout = SequentialWordLayout(dataword_bytes=4)
        for byte_address in range(32):
            for bit in range(8):
                target = layout.bit_address(byte_address, bit)
                assert layout.byte_address(target.word_index, target.bit_index) == (
                    byte_address,
                    bit,
                )

    def test_invalid_configuration(self):
        with pytest.raises(ChipConfigurationError):
            SequentialWordLayout(0)

    def test_invalid_addresses(self):
        layout = SequentialWordLayout(4)
        with pytest.raises(AddressError):
            layout.bit_address(-1, 0)
        with pytest.raises(AddressError):
            layout.bit_address(0, 8)
        with pytest.raises(AddressError):
            layout.byte_address(0, 32)


class TestByteInterleavedLayout:
    def test_paper_layout_interleaves_two_words_per_32_bytes(self):
        # 32B region = two 16B ECC words interleaved at byte granularity.
        layout = ByteInterleavedWordLayout(dataword_bytes=16, words_per_region=2)
        assert layout.region_bytes == 32
        assert layout.bit_address(0, 0).word_index == 0
        assert layout.bit_address(1, 0).word_index == 1
        assert layout.bit_address(2, 0).word_index == 0
        assert layout.bit_address(3, 0).word_index == 1
        # Second region starts at byte 32 and uses words 2 and 3.
        assert layout.bit_address(32, 0).word_index == 2
        assert layout.bit_address(33, 0).word_index == 3

    def test_bytes_within_word_are_consecutive(self):
        layout = ByteInterleavedWordLayout(dataword_bytes=16, words_per_region=2)
        # Even bytes 0,2,4,... of a region map to consecutive bytes of word 0.
        for byte_in_word, byte_address in enumerate(range(0, 32, 2)):
            target = layout.bit_address(byte_address, 0)
            assert target.word_index == 0
            assert target.bit_index == byte_in_word * 8

    def test_round_trip(self):
        layout = ByteInterleavedWordLayout(dataword_bytes=4, words_per_region=2)
        for byte_address in range(64):
            for bit in range(8):
                target = layout.bit_address(byte_address, bit)
                assert layout.byte_address(target.word_index, target.bit_index) == (
                    byte_address,
                    bit,
                )

    def test_invalid_configuration(self):
        with pytest.raises(ChipConfigurationError):
            ByteInterleavedWordLayout(0, 2)
        with pytest.raises(ChipConfigurationError):
            ByteInterleavedWordLayout(16, 0)

    def test_invalid_addresses(self):
        layout = ByteInterleavedWordLayout(4, 2)
        with pytest.raises(AddressError):
            layout.bit_address(-1, 0)
        with pytest.raises(AddressError):
            layout.bit_address(0, 9)
        with pytest.raises(AddressError):
            layout.byte_address(0, 99)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=7))
    @settings(max_examples=80, deadline=None)
    def test_round_trip_property(self, byte_address, bit):
        layout = ByteInterleavedWordLayout(dataword_bytes=16, words_per_region=2)
        target = layout.bit_address(byte_address, bit)
        assert layout.byte_address(target.word_index, target.bit_index) == (byte_address, bit)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_every_byte_maps_to_exactly_one_word(self, byte_address):
        layout = ByteInterleavedWordLayout(dataword_bytes=16, words_per_region=2)
        words = {layout.bit_address(byte_address, bit).word_index for bit in range(8)}
        assert len(words) == 1


class TestCellTypeLayout:
    def test_uniform_layout(self):
        layout = CellTypeLayout.uniform(CellType.TRUE_CELL)
        assert all(
            layout.cell_type_for_row(row) is CellType.TRUE_CELL for row in range(100)
        )

    def test_alternating_blocks(self):
        layout = CellTypeLayout.alternating([2, 3], first=CellType.TRUE_CELL)
        expected = [
            CellType.TRUE_CELL,
            CellType.TRUE_CELL,
            CellType.ANTI_CELL,
            CellType.ANTI_CELL,
            CellType.ANTI_CELL,
        ]
        for row, cell_type in enumerate(expected * 2):
            assert layout.cell_type_for_row(row) is cell_type

    def test_period(self):
        assert CellTypeLayout.alternating([8, 8, 12]).period == 28

    def test_rows_of_type(self):
        layout = CellTypeLayout.alternating([1, 1])
        assert layout.rows_of_type(CellType.TRUE_CELL, 6) == [0, 2, 4]
        assert layout.rows_of_type(CellType.ANTI_CELL, 6) == [1, 3, 5]

    def test_invalid_configuration(self):
        with pytest.raises(ChipConfigurationError):
            CellTypeLayout([], [])
        with pytest.raises(ChipConfigurationError):
            CellTypeLayout([CellType.TRUE_CELL], [0])
        with pytest.raises(ChipConfigurationError):
            CellTypeLayout([CellType.TRUE_CELL], [1, 2])

    def test_negative_row_rejected(self):
        with pytest.raises(AddressError):
            CellTypeLayout.uniform(CellType.TRUE_CELL).cell_type_for_row(-1)
