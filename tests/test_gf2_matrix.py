"""Unit tests for the GF(2) matrix and vector types."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.gf2 import GF2Matrix, GF2Vector


class TestGF2VectorConstruction:
    def test_from_list_reduces_mod_2(self):
        vec = GF2Vector([0, 1, 2, 3, 4])
        assert vec.to_list() == [0, 1, 0, 1, 0]

    def test_zeros_and_ones(self):
        assert GF2Vector.zeros(4).to_list() == [0, 0, 0, 0]
        assert GF2Vector.ones(3).to_list() == [1, 1, 1]

    def test_unit_vector(self):
        vec = GF2Vector.unit(5, 2)
        assert vec.to_list() == [0, 0, 1, 0, 0]

    def test_unit_vector_out_of_range(self):
        with pytest.raises(DimensionError):
            GF2Vector.unit(3, 3)

    def test_from_support(self):
        vec = GF2Vector.from_support(6, [1, 4])
        assert vec.support == (1, 4)

    def test_from_support_out_of_range(self):
        with pytest.raises(DimensionError):
            GF2Vector.from_support(4, [4])

    def test_from_int_round_trip(self):
        for value in [0, 1, 5, 13, 255]:
            vec = GF2Vector.from_int(value, 8)
            assert vec.to_int() == value

    def test_from_int_too_large(self):
        with pytest.raises(DimensionError):
            GF2Vector.from_int(16, 4)

    def test_from_int_negative(self):
        with pytest.raises(ValueError):
            GF2Vector.from_int(-1, 4)

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(DimensionError):
            GF2Vector([[1, 0], [0, 1]])


class TestGF2VectorOperations:
    def test_addition_is_xor(self):
        left = GF2Vector([1, 0, 1, 1])
        right = GF2Vector([1, 1, 0, 1])
        assert (left + right).to_list() == [0, 1, 1, 0]

    def test_addition_length_mismatch(self):
        with pytest.raises(DimensionError):
            GF2Vector([1, 0]) + GF2Vector([1, 0, 1])

    def test_inner_product(self):
        left = GF2Vector([1, 1, 0, 1])
        right = GF2Vector([1, 0, 1, 1])
        assert left * right == 0
        assert left * GF2Vector([1, 0, 0, 0]) == 1

    def test_weight_and_support(self):
        vec = GF2Vector([1, 0, 1, 1, 0])
        assert vec.weight == 3
        assert vec.support == (0, 2, 3)

    def test_is_zero(self):
        assert GF2Vector.zeros(3).is_zero()
        assert not GF2Vector([0, 1, 0]).is_zero()

    def test_flip(self):
        vec = GF2Vector([0, 0, 1])
        assert vec.flip(0).to_list() == [1, 0, 1]
        assert vec.flip(2).to_list() == [0, 0, 0]
        # flip returns a copy
        assert vec.to_list() == [0, 0, 1]

    def test_equality_and_hash(self):
        assert GF2Vector([1, 0, 1]) == GF2Vector([1, 0, 1])
        assert GF2Vector([1, 0, 1]) != GF2Vector([1, 0, 0])
        assert hash(GF2Vector([1, 0, 1])) == hash(GF2Vector([1, 0, 1]))

    def test_slicing_returns_vector(self):
        vec = GF2Vector([1, 0, 1, 1])
        sliced = vec[0:2]
        assert isinstance(sliced, GF2Vector)
        assert sliced.to_list() == [1, 0]

    def test_indexing_returns_int(self):
        vec = GF2Vector([1, 0, 1])
        assert vec[0] == 1
        assert vec[1] == 0

    def test_iteration(self):
        assert list(GF2Vector([1, 0, 1])) == [1, 0, 1]

    def test_repr_shows_bits(self):
        assert "101" in repr(GF2Vector([1, 0, 1]))


class TestGF2MatrixConstruction:
    def test_identity(self):
        identity = GF2Matrix.identity(3)
        assert identity.shape == (3, 3)
        for i in range(3):
            for j in range(3):
                assert identity[i, j] == (1 if i == j else 0)

    def test_zeros(self):
        assert GF2Matrix.zeros(2, 3).shape == (2, 3)
        assert GF2Matrix.zeros(2, 3).is_zero()

    def test_from_rows(self):
        matrix = GF2Matrix.from_rows([[1, 0], [0, 1], [1, 1]])
        assert matrix.shape == (3, 2)
        assert matrix.row(2).to_list() == [1, 1]

    def test_from_rows_inconsistent_lengths(self):
        with pytest.raises(DimensionError):
            GF2Matrix.from_rows([[1, 0], [1]])

    def test_from_rows_empty(self):
        with pytest.raises(DimensionError):
            GF2Matrix.from_rows([])

    def test_from_columns(self):
        matrix = GF2Matrix.from_columns([[1, 0, 1], [0, 1, 1]])
        assert matrix.shape == (3, 2)
        assert matrix.column(0).to_list() == [1, 0, 1]
        assert matrix.column(1).to_list() == [0, 1, 1]

    def test_values_reduced_mod_2(self):
        matrix = GF2Matrix([[2, 3], [4, 5]])
        assert matrix == GF2Matrix([[0, 1], [0, 1]])

    def test_rejects_one_dimensional_input(self):
        with pytest.raises(DimensionError):
            GF2Matrix([1, 0, 1])


class TestGF2MatrixOperations:
    def test_addition_is_xor(self):
        left = GF2Matrix([[1, 0], [1, 1]])
        right = GF2Matrix([[1, 1], [0, 1]])
        assert (left + right) == GF2Matrix([[0, 1], [1, 0]])

    def test_addition_shape_mismatch(self):
        with pytest.raises(DimensionError):
            GF2Matrix([[1, 0]]) + GF2Matrix([[1], [0]])

    def test_matrix_vector_product(self):
        matrix = GF2Matrix([[1, 1, 0], [0, 1, 1]])
        vec = GF2Vector([1, 1, 1])
        assert (matrix @ vec).to_list() == [0, 0]

    def test_matrix_matrix_product(self):
        left = GF2Matrix([[1, 1], [0, 1]])
        right = GF2Matrix([[1, 0], [1, 1]])
        assert (left @ right) == GF2Matrix([[0, 1], [1, 1]])

    def test_product_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            GF2Matrix([[1, 0]]) @ GF2Vector([1, 0, 1])

    def test_transpose(self):
        matrix = GF2Matrix([[1, 0, 1], [0, 1, 1]])
        assert matrix.T.shape == (3, 2)
        assert matrix.T.column(0).to_list() == [1, 0, 1]

    def test_hstack_vstack(self):
        left = GF2Matrix([[1], [0]])
        right = GF2Matrix([[0], [1]])
        assert left.hstack(right) == GF2Matrix([[1, 0], [0, 1]])
        assert left.vstack(right) == GF2Matrix([[1], [0], [0], [1]])

    def test_hstack_mismatch(self):
        with pytest.raises(DimensionError):
            GF2Matrix([[1]]).hstack(GF2Matrix([[1], [0]]))

    def test_vstack_mismatch(self):
        with pytest.raises(DimensionError):
            GF2Matrix([[1]]).vstack(GF2Matrix([[1, 0]]))

    def test_submatrix(self):
        matrix = GF2Matrix([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        sub = matrix.submatrix(rows=[0, 2], cols=[1, 2])
        assert sub == GF2Matrix([[0, 1], [1, 0]])

    def test_column_and_row_orderings(self):
        matrix = GF2Matrix([[1, 0], [0, 1]])
        assert matrix.with_column_order([1, 0]) == GF2Matrix([[0, 1], [1, 0]])
        assert matrix.with_row_order([1, 0]) == GF2Matrix([[0, 1], [1, 0]])

    def test_column_order_must_be_permutation(self):
        with pytest.raises(DimensionError):
            GF2Matrix([[1, 0], [0, 1]]).with_column_order([0, 0])

    def test_equality_and_hash(self):
        first = GF2Matrix([[1, 0], [0, 1]])
        second = GF2Matrix.identity(2)
        assert first == second
        assert hash(first) == hash(second)

    def test_rows_and_columns_lists(self):
        matrix = GF2Matrix([[1, 0], [1, 1]])
        assert [r.to_list() for r in matrix.rows()] == [[1, 0], [1, 1]]
        assert [c.to_list() for c in matrix.columns()] == [[1, 1], [0, 1]]

    def test_to_numpy_returns_copy(self):
        matrix = GF2Matrix([[1, 0], [0, 1]])
        array = matrix.to_numpy()
        array[0, 0] = 0
        assert matrix[0, 0] == 1
        assert array.dtype == np.uint8
