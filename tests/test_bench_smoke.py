"""Every registered workload runs at minimal scale and passes its oracles.

The ISSUE-6 satellite: the smoke tier exists precisely so the tier-1 test
suite can execute the *entire* benchmark surface — all workloads, all
conditions, all bit-identity oracles — in seconds, with deterministic seeds.
"""

import pytest

from repro.bench import (
    ORACLE_SKIPPED,
    all_workloads,
    get_workload,
    run_workload,
    workload_names,
)
from repro.bench.registry import BenchContext
from repro.bench.timing import TIERS, control_for_tier

EXPECTED_WORKLOADS = {
    "gf2-backends",
    "sat-solver",
    "sweep-parallel",
    "decoder-families",
    "decoder-fused",
    "fig1-error-probability",
    "table1-outcomes",
    "table2-miscorrection-profile",
    "fig3-manufacturer-profiles",
    "fig4-threshold-filter",
    "fig5-uniqueness",
    "fig6-solver-runtime",
    "fig8-beep-passes",
    "fig9-beep-error-probability",
    "sec511-cell-layout",
    "sec512-dataword-layout",
    "sec53-end-to-end-recovery",
    "sec63-experiment-runtime",
    "ablation-solver-backends",
    "store-layouts",
}


def test_registry_covers_every_ported_benchmark():
    assert set(workload_names()) == EXPECTED_WORKLOADS


def test_every_workload_declares_all_tiers():
    for workload in all_workloads():
        assert set(workload.tiers) == set(TIERS), workload.name
        for tier in TIERS:
            assert isinstance(workload.params_for(tier), dict)


@pytest.mark.parametrize("name", sorted(EXPECTED_WORKLOADS))
def test_workload_passes_oracles_at_smoke_scale(name):
    record = run_workload(get_workload(name), "smoke")
    assert record.workload == name
    assert record.conditions, "a workload must report at least one condition"
    evaluated = 0
    for condition in record.conditions:
        for oracle, value in condition.oracles.items():
            assert value is True or value == ORACLE_SKIPPED, (
                f"{name}/{condition.condition}: oracle {oracle!r} -> {value!r}"
            )
            evaluated += value is True
    assert evaluated > 0, "a workload must evaluate at least one hard oracle"


def test_smoke_runs_are_deterministic_in_oracles_and_counts():
    # Timings vary run to run; oracles and count-like metrics must not.
    name = "sat-solver"
    workload = get_workload(name)
    first = run_workload(workload, "smoke")
    second = run_workload(workload, "smoke")
    for a, b in zip(first.conditions, second.conditions):
        assert a.condition == b.condition
        assert a.oracles == b.oracles
        for metric in ("models_enumerated", "canonical_codes"):
            if metric in a.metrics:
                assert a.metrics[metric] == b.metrics[metric]


def test_context_exposes_tier_and_control():
    context = BenchContext(tier="full", control=control_for_tier("full"))
    assert context.is_full
    assert not BenchContext(tier="smoke", control=control_for_tier("smoke")).is_full
