"""Unit and integration tests for the simulated DRAM chip with on-die ECC."""

import numpy as np
import pytest

from repro.exceptions import AddressError, ChipConfigurationError
from repro.gf2 import GF2Vector
from repro.ecc import hamming_code, random_hamming_code
from repro.dram import (
    CellType,
    CellTypeLayout,
    ChipGeometry,
    DataRetentionModel,
    RetentionCalibration,
    SimulatedDramChip,
    TransientFaultModel,
)


def make_chip(num_data_bits=16, num_rows=8, words_per_row=4, seed=0, **kwargs):
    code = hamming_code(num_data_bits)
    geometry = ChipGeometry(num_rows=num_rows, words_per_row=words_per_row)
    return SimulatedDramChip(code=code, geometry=geometry, seed=seed, **kwargs)


#: A calibration that produces many retention failures within short windows,
#: keeping tests fast while exercising the same code paths.
FAST_FAILING = DataRetentionModel(RetentionCalibration(1.0, 1e-4, 100.0, 0.5))


class TestGeometry:
    def test_word_count(self):
        chip = make_chip(num_rows=4, words_per_row=8)
        assert chip.num_words == 32
        assert chip.geometry.num_words == 32

    def test_invalid_geometry(self):
        with pytest.raises(ChipConfigurationError):
            ChipGeometry(num_rows=0, words_per_row=4)

    def test_row_of_word(self):
        chip = make_chip(num_rows=4, words_per_row=8)
        assert chip.row_of_word(0) == 0
        assert chip.row_of_word(7) == 0
        assert chip.row_of_word(8) == 1
        assert list(chip.words_in_row(1)) == list(range(8, 16))

    def test_row_of_word_out_of_range(self):
        chip = make_chip()
        with pytest.raises(AddressError):
            chip.row_of_word(chip.num_words)
        with pytest.raises(AddressError):
            chip.words_in_row(999)

    def test_row_size_bytes(self):
        chip = make_chip(num_data_bits=16, words_per_row=4)
        assert chip.row_size_bytes == 8


class TestReadWrite:
    def test_write_then_read_round_trip(self):
        chip = make_chip()
        dataword = GF2Vector([1, 0] * 8)
        chip.write_dataword(3, dataword)
        assert chip.read_dataword(3) == dataword

    def test_fill_writes_every_word(self):
        chip = make_chip()
        chip.fill(GF2Vector.ones(16))
        data = chip.read_all_datawords()
        assert data.shape == (chip.num_words, 16)
        assert (data == 1).all()

    def test_bulk_write_and_read(self):
        chip = make_chip()
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2, size=(chip.num_words, 16)).astype(np.uint8)
        chip.write_datawords(range(chip.num_words), words)
        assert np.array_equal(chip.read_all_datawords(), words)

    def test_write_wrong_shape(self):
        chip = make_chip()
        with pytest.raises(AddressError):
            chip.write_datawords([0, 1], np.zeros((2, 8), dtype=np.uint8))

    def test_write_out_of_range_index(self):
        chip = make_chip()
        with pytest.raises(AddressError):
            chip.write_dataword(chip.num_words, GF2Vector.zeros(16))

    def test_wrong_dataword_length(self):
        chip = make_chip()
        with pytest.raises(AddressError):
            chip.write_dataword(0, GF2Vector.zeros(8))

    def test_stored_codeword_is_systematic_encoding(self):
        chip = make_chip()
        dataword = GF2Vector([1] + [0] * 15)
        chip.write_dataword(0, dataword)
        codeword = chip.inspect_stored_codeword(0)
        assert codeword == chip.code.encode(dataword)


class TestByteAddressing:
    def test_byte_round_trip(self):
        chip = make_chip(num_data_bits=16)
        payload = bytes(range(16))
        chip.write_bytes(0, payload)
        assert chip.read_bytes(0, 16) == payload

    def test_byte_interleaving_matches_layout(self):
        chip = make_chip(num_data_bits=16)
        # Bytes 0 and 1 of a region belong to different ECC words.
        chip.write_bytes(0, bytes([0xFF, 0x00, 0x00, 0x00]))
        word0 = chip.read_dataword(0)
        word1 = chip.read_dataword(1)
        assert word0.to_list()[:8] == [1] * 8
        assert word1.to_list()[:8] == [0] * 8

    def test_byte_access_requires_layout(self):
        code = hamming_code(12)  # not byte aligned
        chip = SimulatedDramChip(code, ChipGeometry(2, 2))
        with pytest.raises(ChipConfigurationError):
            chip.write_bytes(0, b"\x00")
        with pytest.raises(ChipConfigurationError):
            _ = chip.row_size_bytes


class TestRetentionBehaviour:
    def test_no_pause_means_no_errors(self):
        chip = make_chip(retention_model=FAST_FAILING)
        chip.fill(GF2Vector.ones(16))
        assert (chip.read_all_datawords() == 1).all()

    def test_pause_refresh_induces_errors_in_charged_cells_only(self):
        chip = make_chip(
            num_rows=16, words_per_row=8, retention_model=FAST_FAILING, seed=1
        )
        chip.fill(GF2Vector.ones(16))
        chip.pause_refresh(200.0, temperature_c=80.0)
        raw_errors = [
            chip.inspect_pre_correction_errors(w) for w in range(chip.num_words)
        ]
        assert any(raw_errors), "expected at least one retention error"
        # True cells store 1 when charged; every raw error must be a 1 -> 0 decay.
        for word_index, errors in enumerate(raw_errors):
            stored = chip.inspect_stored_codeword(word_index)
            current = chip.inspect_current_codeword(word_index)
            for position in errors:
                assert stored[position] == 1
                assert current[position] == 0

    def test_all_zero_true_cell_pattern_never_fails(self):
        chip = make_chip(retention_model=FAST_FAILING)
        chip.fill(GF2Vector.zeros(16))
        chip.pause_refresh(10_000.0)
        assert (chip.read_all_datawords() == 0).all()
        for word in range(chip.num_words):
            assert chip.inspect_pre_correction_errors(word) == ()

    def test_anti_cells_fail_towards_one(self):
        code = hamming_code(16)
        chip = SimulatedDramChip(
            code,
            ChipGeometry(4, 4),
            cell_layout=CellTypeLayout.uniform(CellType.ANTI_CELL),
            retention_model=FAST_FAILING,
            seed=2,
        )
        chip.fill(GF2Vector.zeros(16))
        chip.pause_refresh(500.0)
        errors = [
            position
            for word in range(chip.num_words)
            for position in chip.inspect_pre_correction_errors(word)
        ]
        assert errors, "expected anti-cell retention errors"
        for word in range(chip.num_words):
            current = chip.inspect_current_codeword(word)
            for position in chip.inspect_pre_correction_errors(word):
                assert current[position] == 1

    def test_retention_errors_are_repeatable(self):
        first = make_chip(num_rows=16, words_per_row=8, retention_model=FAST_FAILING, seed=5)
        second = make_chip(num_rows=16, words_per_row=8, retention_model=FAST_FAILING, seed=5)
        for chip in (first, second):
            chip.fill(GF2Vector.ones(16))
            chip.pause_refresh(100.0)
        for word in range(first.num_words):
            assert first.inspect_pre_correction_errors(
                word
            ) == second.inspect_pre_correction_errors(word)

    def test_decay_accumulates_until_rewrite(self):
        chip = make_chip(retention_model=FAST_FAILING, seed=3)
        chip.fill(GF2Vector.ones(16))
        chip.pause_refresh(100.0)
        errors_after_first = sum(
            len(chip.inspect_pre_correction_errors(w)) for w in range(chip.num_words)
        )
        chip.pause_refresh(1000.0)
        errors_after_second = sum(
            len(chip.inspect_pre_correction_errors(w)) for w in range(chip.num_words)
        )
        assert errors_after_second >= errors_after_first
        chip.fill(GF2Vector.ones(16))
        assert all(
            chip.inspect_pre_correction_errors(w) == () for w in range(chip.num_words)
        )

    def test_single_error_words_are_corrected_by_on_die_ecc(self):
        chip = make_chip(num_rows=32, words_per_row=8, retention_model=FAST_FAILING, seed=7)
        chip.fill(GF2Vector.ones(16))
        chip.pause_refresh(20.0)
        data = chip.read_all_datawords()
        for word in range(chip.num_words):
            if len(chip.inspect_pre_correction_errors(word)) == 1:
                assert (data[word] == 1).all()

    def test_negative_pause_rejected(self):
        with pytest.raises(ChipConfigurationError):
            make_chip().pause_refresh(-1.0)

    def test_restore_refresh_is_noop(self):
        chip = make_chip(retention_model=FAST_FAILING)
        chip.fill(GF2Vector.ones(16))
        chip.pause_refresh(50.0)
        before = chip.read_all_datawords().copy()
        chip.restore_refresh()
        assert np.array_equal(chip.read_all_datawords(), before)


class TestTransientFaults:
    def test_transient_faults_affect_reads_not_storage(self):
        chip = make_chip(
            num_rows=16,
            words_per_row=8,
            transient_faults=TransientFaultModel(probability_per_bit=0.02),
            seed=9,
        )
        chip.fill(GF2Vector.zeros(16))
        # Transient flips may appear on any given read...
        observed_any = any(chip.read_all_datawords().any() for _ in range(10))
        assert observed_any
        # ...but the stored state never changes.
        for word in range(chip.num_words):
            assert chip.inspect_pre_correction_errors(word) == ()

    def test_zero_probability_means_clean_reads(self):
        chip = make_chip(transient_faults=TransientFaultModel(0.0))
        chip.fill(GF2Vector.ones(16))
        for _ in range(5):
            assert (chip.read_all_datawords() == 1).all()


class TestGroundTruthInspection:
    def test_inspect_retention_time_positive(self):
        chip = make_chip()
        assert chip.inspect_retention_time(0, 0) > 0

    def test_cell_type_of_word_follows_layout(self):
        code = hamming_code(16)
        chip = SimulatedDramChip(
            code,
            ChipGeometry(num_rows=4, words_per_row=2),
            cell_layout=CellTypeLayout.alternating([1, 1]),
        )
        assert chip.cell_type_of_word(0) is CellType.TRUE_CELL
        assert chip.cell_type_of_word(2) is CellType.ANTI_CELL

    def test_inspect_out_of_range(self):
        chip = make_chip()
        with pytest.raises(AddressError):
            chip.inspect_stored_codeword(chip.num_words)


class TestDefaultConstruction:
    def test_default_geometry_and_layout(self):
        code = random_hamming_code(32, rng=np.random.default_rng(0))
        chip = SimulatedDramChip(code)
        assert chip.num_words == ChipGeometry().num_words
        assert chip.word_layout is not None
        assert chip.word_layout.dataword_bytes == 4
