"""Positive fixture for RPR105: unpicklable callables and nested pools."""
from concurrent.futures import ProcessPoolExecutor


class Runner:
    def execute(self, cell):
        return cell


def run_cells(cells, runner):
    pool = ProcessPoolExecutor()
    futures = [pool.submit(lambda: cell) for cell in cells]  # lambda
    futures.append(pool.submit(runner.execute, cells[0]))  # bound method

    def local_job(cell):  # nested def, not importable by workers
        return cell

    futures.append(pool.submit(local_job, cells[0]))
    return futures


def worker_entry(cell):
    inner = ProcessPoolExecutor()  # nested pool inside a worker
    return inner, run_campaign(cell, processes=4)


def run_campaign(cell, processes):
    return cell, processes


def dispatch(cells):
    pool = ProcessPoolExecutor()
    return [pool.submit(worker_entry, cell) for cell in cells]
