"""Positive fixture for RPR103 (linted under a hot-package path)."""
from repro.obs import TRACER


def decode_batch(words):
    TRACER.add("decode.batches")  # unguarded counter on the hot path
    with TRACER.span("decode.batch"):  # unguarded span
        for word in words:
            yield word


def conflict(level):
    if level > 0:
        pass
    else:
        TRACER.event("solver.conflict", {"level": level})  # unguarded
