"""Negative fixture for RPR107: the fused path stays packed throughout."""
import numpy as np
from repro.gf2.bitpack import lanes_to_bytes, packed_column_counts, popcount_u64


def classify(lanes, num_bits):
    mask_bytes = lanes_to_bytes(lanes, num_bits)
    counts = packed_column_counts(mask_bytes, num_bits)
    weights = popcount_u64(lanes).sum(axis=1)
    packed = np.packbits(mask_bytes, axis=1)  # packing is fine; unpacking is not
    return counts, weights, packed
