"""Negative fixture for RPR105: module-level workers, no nested fan-out."""
from concurrent.futures import ProcessPoolExecutor


def execute_cell(cell):
    return run_campaign(cell, processes=1)


def run_campaign(cell, processes):
    return cell, processes


def dispatch(cells):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(execute_cell, cell) for cell in cells]
