"""Positive fixture for RPR101: sets and listings feeding ordered output."""
import glob
import os

names = {"b", "a", "c"}
for name in names:  # set iterated into ordered output
    print(name)

materialised = list({3, 1, 2})  # order-sensitive consumer
joined = ",".join({"x", "y"})  # join observes hash order
comprehended = [item for item in names]  # comprehension over a set

for entry in os.listdir("."):  # on-disk order
    print(entry)

paths = list(glob.glob("*.json"))  # unsorted listing materialised
