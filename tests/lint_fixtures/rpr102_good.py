"""Negative fixture for RPR102: durations, seeded generators, __hash__."""
import hashlib
import time

import numpy as np

start = time.perf_counter()
tick = time.monotonic()
rng = np.random.default_rng(1234)
threaded = np.random.default_rng(seed=7)
streams = np.random.SeedSequence(99).spawn(4)
digest = hashlib.sha256(b"canonical").hexdigest()


class Key:
    def __init__(self, value):
        self.value = value

    def __hash__(self):
        return hash(self.value)
