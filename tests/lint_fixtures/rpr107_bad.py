"""Positive fixture for RPR107 (linted under the fused hot-path module)."""
import numpy as np
from repro.gf2.bitpack import unpack_rows, unpack_vector as uv


def classify(lanes, num_bits):
    bits = np.unpackbits(lanes.view(np.uint8), axis=1)  # dense blow-up
    rows = unpack_rows(lanes, num_bits)  # bitpack helper, same blow-up
    first = uv(lanes[0], num_bits)  # aliased import still flagged
    return bits.sum() + rows.sum() + first.sum()
