"""Positive fixture for RPR106 (linted under a library path)."""


def parse(value):
    if value < 0:
        raise ValueError("negative")  # builtin raise in library code
    try:
        return int(value)
    except:  # bare except
        return None


def lookup(mapping, key):
    try:
        return mapping[key]
    except Exception:  # overbroad, swallows diagnostics
        return None
