"""Positive fixture for RPR104 (linted under a non-store library path)."""
import os


def log_result(path, line):
    with open(path, "a") as handle:  # append outside the store
        handle.write(line + "\n")


def raw_append(fd, payload):
    os.write(fd, payload)  # raw write bypasses the locked append path


def append_fd(path):
    return os.open(path, os.O_WRONLY | os.O_APPEND)
