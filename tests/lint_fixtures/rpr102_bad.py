"""Positive fixture for RPR102: every banned entropy source."""
import random
import time
import uuid
from datetime import datetime

import numpy as np

stamp = time.time()
precise = time.time_ns()
now = datetime.now()
identifier = uuid.uuid4()
draw = random.random()
choice = random.choice([1, 2, 3])
np.random.seed(42)
legacy = np.random.rand(4)
unseeded = np.random.default_rng()
key = hash(("config", 7))
