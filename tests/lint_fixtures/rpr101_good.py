"""Negative fixture for RPR101: every consumer is order-insensitive or sorted."""
import glob
import os

names = {"b", "a", "c"}
for name in sorted(names):
    print(name)

count = len(names)
total = sum({1, 2, 3})
present = "a" in names
smallest = min(names)
copied = set(names)
any_upper = any(n.isupper() for n in names)

for entry in sorted(os.listdir(".")):
    print(entry)

paths = sorted(glob.glob("*.json"))
