"""Negative fixture for RPR106: ReproError raises, disciplined handlers."""
from repro.exceptions import DimensionError, ValidationError


def parse(value):
    if value < 0:
        raise ValidationError("negative")
    try:
        return int(value)
    except (TypeError, ValueError):
        return None


def check_shape(shape):
    if len(shape) != 2:
        raise DimensionError(f"expected a matrix shape, got {shape}")


def cleanup_then_rethrow(resource):
    try:
        return resource.use()
    except BaseException:
        resource.close()
        raise


class Interface:
    def run(self):
        raise NotImplementedError
