"""Negative fixture for RPR103: every tracer call behind the enabled guard."""
from repro.obs import TRACER


def decode_batch(words):
    if TRACER.enabled:
        TRACER.add("decode.batches")
    tracing = TRACER.enabled
    if tracing:
        TRACER.event("decode.start", {"n": len(words)})
    for word in words:
        yield word


def conflict(level):
    TRACER.enabled and TRACER.add("solver.conflicts")
    span = TRACER.span("solver.conflict") if TRACER.enabled else None
    return span
