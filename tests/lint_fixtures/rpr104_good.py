"""Negative fixture for RPR104 (linted as if it were store/store.py)."""
import os


class Store:
    def _lock(self):
        raise NotImplementedError

    def put(self, payload):
        with self._lock():
            fd = os.open("records.jsonl", os.O_WRONLY | os.O_APPEND)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)

    def read_all(self):
        with open("records.jsonl", "r", encoding="utf-8") as handle:
            return handle.read()
