"""Unit and integration tests for the BEER solver (specialised backend)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProfileError, SolverError
from repro.ecc import (
    codes_equivalent,
    example_7_4_code,
    hamming_code,
    random_hamming_code,
)
from repro.core import (
    BeerSolver,
    ChargedPattern,
    MiscorrectionProfile,
    charged_patterns,
    expected_miscorrection_profile,
    one_charged_patterns,
)


def profile_for(code, weights):
    patterns = list(charged_patterns(code.num_data_bits, weights))
    return expected_miscorrection_profile(code, patterns)


class TestSolverBasics:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(SolverError):
            BeerSolver(0)
        with pytest.raises(SolverError):
            BeerSolver(5, num_parity_bits=3)

    def test_profile_length_mismatch_rejected(self):
        solver = BeerSolver(4, 3)
        with pytest.raises(ProfileError):
            solver.solve(MiscorrectionProfile(5))

    def test_default_parity_bits_is_minimum(self):
        assert BeerSolver(16).num_parity_bits == 5
        assert BeerSolver(64).num_parity_bits == 7

    def test_solution_code_property_raises_when_ambiguous(self):
        # An empty profile constrains nothing: many solutions exist.
        solver = BeerSolver(2, 3)
        solution = solver.solve(MiscorrectionProfile(2), max_solutions=3)
        assert solution.num_solutions == 3
        assert solution.truncated
        assert not solution.unique
        with pytest.raises(SolverError):
            _ = solution.code

    def test_node_budget_enforced(self):
        code = hamming_code(8)
        profile = profile_for(code, [1])
        with pytest.raises(SolverError):
            BeerSolver(8).solve(profile, max_nodes=1)

    def test_inconsistent_profile_has_no_solutions(self):
        # Claim that a 1-CHARGED pattern miscorrects every other bit AND that
        # another pattern miscorrects nothing, including the first bit - then
        # make the two claims contradictory by also claiming the reverse
        # containment, which forces equal columns (impossible: distinctness).
        profile = MiscorrectionProfile(2)
        profile.record(ChargedPattern(2, [0]), [1])
        profile.record(ChargedPattern(2, [1]), [0])
        solution = BeerSolver(2, 3).solve(profile)
        assert solution.num_solutions == 0
        with pytest.raises(SolverError):
            _ = solution.code


class TestExactRecovery:
    def test_paper_example_code_recovered_from_one_charged(self):
        code = example_7_4_code()
        solution = BeerSolver(4, 3).solve(profile_for(code, [1]))
        assert solution.unique
        assert codes_equivalent(solution.code, code)

    def test_full_length_codes_unique_with_one_charged(self):
        # Full-length codes (k = 2^r - r - 1) are uniquely identified by the
        # 1-CHARGED patterns alone (paper Section 6.1).
        for num_data_bits in (4, 11):
            code = random_hamming_code(num_data_bits, rng=np.random.default_rng(num_data_bits))
            solution = BeerSolver(num_data_bits).solve(profile_for(code, [1]))
            assert solution.unique
            assert codes_equivalent(solution.code, code)

    def test_shortened_codes_unique_with_one_two_charged(self):
        for num_data_bits, seed in [(6, 0), (8, 1), (12, 2), (16, 3)]:
            code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
            solution = BeerSolver(num_data_bits).solve(profile_for(code, [1, 2]))
            assert solution.unique, f"k={num_data_bits} not unique"
            assert codes_equivalent(solution.code, code)

    def test_shortened_code_with_extra_parity_bits(self):
        code = random_hamming_code(6, num_parity_bits=5, rng=np.random.default_rng(7))
        solution = BeerSolver(6, num_parity_bits=5).solve(profile_for(code, [1, 2]))
        assert solution.unique
        assert codes_equivalent(solution.code, code)

    def test_recovered_code_reproduces_profile(self):
        code = random_hamming_code(10, rng=np.random.default_rng(11))
        profile = profile_for(code, [1, 2])
        solution = BeerSolver(10).solve(profile)
        assert BeerSolver.verify(solution.code, profile)

    def test_verify_rejects_wrong_code(self):
        code = random_hamming_code(8, rng=np.random.default_rng(0))
        other = random_hamming_code(8, rng=np.random.default_rng(99))
        if codes_equivalent(code, other):
            pytest.skip("random codes happened to be equivalent")
        profile = profile_for(code, [1, 2])
        assert not BeerSolver.verify(other, profile)


class TestSolutionCounting:
    def test_one_charged_alone_may_be_ambiguous_for_shortened_codes(self):
        # With heavy shortening the 1-CHARGED patterns need not uniquely
        # identify the code (paper Figure 5): two columns whose supports are
        # disjoint produce the same (empty) containment profile as two columns
        # whose supports merely overlap, and those codes are not equivalent.
        from repro.ecc import SystematicLinearCode

        code = SystematicLinearCode.from_parity_columns([0b00011, 0b00101], 5)
        single = BeerSolver(2, 5).solve(profile_for(code, [1]), max_solutions=10)
        assert single.num_solutions > 1
        assert any(codes_equivalent(code, candidate) for candidate in single.codes)
        # Adding the 2-CHARGED pattern narrows the candidate set.
        combined = BeerSolver(2, 5).solve(profile_for(code, [1, 2]), max_solutions=10)
        assert combined.num_solutions <= single.num_solutions
        assert any(codes_equivalent(code, candidate) for candidate in combined.codes)

    def test_random_shortened_codes_always_contain_truth_among_candidates(self):
        # Whatever the solution count, the true function is always among the
        # candidates and every candidate reproduces the profile (paper
        # Section 6.1).  With *extra* parity bits beyond the minimum the
        # {1,2}-CHARGED patterns are not always sufficient for uniqueness —
        # the paper's evaluation only covers minimum-redundancy codes, and the
        # minimum-redundancy case is asserted unique below.
        for seed in range(6):
            code = random_hamming_code(5, num_parity_bits=5, rng=np.random.default_rng(seed))
            single = BeerSolver(5, 5).solve(profile_for(code, [1]), max_solutions=20)
            combined = BeerSolver(5, 5).solve(profile_for(code, [1, 2]))
            assert any(codes_equivalent(code, candidate) for candidate in combined.codes)
            assert all(BeerSolver.verify(candidate, profile_for(code, [1, 2]))
                       for candidate in combined.codes)
            # The 1-CHARGED-only enumeration may be truncated at 20 of a much
            # larger candidate set; every reported candidate must nevertheless
            # reproduce the 1-CHARGED profile, and if the enumeration was
            # complete it must include the true function.
            assert all(BeerSolver.verify(candidate, profile_for(code, [1]))
                       for candidate in single.codes)
            if not single.truncated:
                assert any(codes_equivalent(code, candidate) for candidate in single.codes)

        for seed in range(4):
            code = random_hamming_code(5, rng=np.random.default_rng(seed))
            combined = BeerSolver(5).solve(profile_for(code, [1, 2]))
            assert combined.unique
            assert codes_equivalent(combined.code, code)

    def test_true_code_always_among_candidates(self):
        for seed in range(5):
            code = random_hamming_code(6, num_parity_bits=4, rng=np.random.default_rng(seed))
            solution = BeerSolver(6, 4).solve(profile_for(code, [1]), max_solutions=50)
            assert any(codes_equivalent(code, candidate) for candidate in solution.codes)

    def test_solutions_are_pairwise_inequivalent(self):
        code = random_hamming_code(5, num_parity_bits=5, rng=np.random.default_rng(2))
        solution = BeerSolver(5, 5).solve(profile_for(code, [1]), max_solutions=10)
        for i in range(solution.num_solutions):
            for j in range(i + 1, solution.num_solutions):
                assert not codes_equivalent(solution.codes[i], solution.codes[j])

    def test_max_solutions_truncates(self):
        solver = BeerSolver(3, 4)
        solution = solver.solve(MiscorrectionProfile(3), max_solutions=2)
        assert solution.num_solutions == 2
        assert solution.truncated


class TestSolverStatistics:
    def test_statistics_populated(self):
        code = hamming_code(8)
        solution = BeerSolver(8).solve(profile_for(code, [1, 2]))
        assert solution.nodes_visited > 0
        assert solution.runtime_seconds >= 0.0

    def test_two_charged_profile_does_not_hurt_uniqueness(self):
        code = hamming_code(11, num_parity_bits=4)
        only_two = BeerSolver(11, 4).solve(profile_for(code, [2]), max_solutions=5)
        assert any(codes_equivalent(code, candidate) for candidate in only_two.codes)


class TestRandomisedRoundTrips:
    @given(st.integers(min_value=4, max_value=14), st.integers(min_value=0, max_value=500))
    @settings(max_examples=12, deadline=None)
    def test_round_trip_with_one_two_charged(self, num_data_bits, seed):
        code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
        profile = profile_for(code, [1, 2])
        solution = BeerSolver(num_data_bits).solve(profile)
        assert solution.unique
        assert codes_equivalent(solution.code, code)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_profile_of_recovered_code_matches_original(self, seed):
        code = random_hamming_code(9, rng=np.random.default_rng(seed))
        patterns = one_charged_patterns(9)
        profile = expected_miscorrection_profile(code, patterns)
        solution = BeerSolver(9).solve(profile, max_solutions=1)
        recovered = solution.codes[0]
        assert expected_miscorrection_profile(recovered, patterns) == profile
