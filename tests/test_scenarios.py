"""Tests for the scenario registry, sweep expansion, and cache-aware runner."""

import pytest

from repro.exceptions import ScenarioError
from repro.einsim import (
    BurstErrorInjector,
    CompositeInjector,
    UniformRandomInjector,
)
from repro.scenarios import (
    SweepRunner,
    SweepSpec,
    build_injector,
    get_scenario,
    make_einsim_cell,
    resolve_code,
    resolve_dataword,
    scenario_names,
)
from repro.store import CampaignStore


BASE_SWEEP = {
    "name": "unit",
    "num_words": 300,
    "chunk_size": 128,
    "seeds": [0],
    "backends": ["packed"],
    "codes": [{"data_bits": 8}],
    "scenarios": [
        {"name": "uniform-random", "params": {"bit_error_rate": [0.005, 0.02]}},
        {"name": "burst", "params": {"burst_probability": 0.1, "burst_length": 3}},
    ],
}


class TestRegistry:
    def test_all_paper_mechanisms_registered(self):
        names = scenario_names()
        for expected in (
            "uniform-random",
            "data-retention-true",
            "data-retention-anti",
            "data-retention-mixed",
            "fixed-error-count",
            "per-bit-bernoulli",
            "burst",
            "row-stripe",
            "transient-stuck-overlay",
        ):
            assert expected in names

    def test_build_injector_returns_configured_instance(self):
        injector = build_injector("uniform-random", {"bit_error_rate": 0.25})
        assert isinstance(injector, UniformRandomInjector)
        assert injector.bit_error_rate == 0.25

    def test_defaults_are_applied(self):
        injector = build_injector("burst", {"burst_probability": 0.5})
        assert isinstance(injector, BurstErrorInjector)
        assert injector.burst_length == 4

    def test_overlay_builds_composite(self):
        injector = build_injector(
            "transient-stuck-overlay",
            {"transient_probability": 0.001, "stuck_fraction": 0.01},
        )
        assert isinstance(injector, CompositeInjector)
        assert len(injector.injectors) == 2

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            build_injector("no-such-scenario", {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ScenarioError):
            build_injector("uniform-random", {"bit_error_rate": 0.1, "bogus": 1})

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(ScenarioError):
            build_injector("uniform-random", {})

    def test_scenario_description_available(self):
        definition = get_scenario("row-stripe")
        assert "RowHammer" in definition.description


class TestSweepExpansion:
    def test_grid_axes_expand_as_cartesian_product(self):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        # 2 BERs x 1 burst = 3 cells.
        assert spec.num_cells == 3
        scenarios = [cell.config()["scenario"] for cell in spec.cells]
        assert scenarios == ["uniform-random", "uniform-random", "burst"]

    def test_expansion_is_deterministic(self):
        first = SweepSpec.from_dict(BASE_SWEEP)
        second = SweepSpec.from_dict(BASE_SWEEP)
        assert [c.config_json for c in first.cells] == [
            c.config_json for c in second.cells
        ]

    def test_duplicate_cells_are_deduplicated(self):
        payload = dict(BASE_SWEEP)
        payload["scenarios"] = [
            {"name": "uniform-random", "params": {"bit_error_rate": 0.01}},
            {"name": "uniform-random", "params": {"bit_error_rate": 0.01}},
        ]
        assert SweepSpec.from_dict(payload).num_cells == 1

    def test_unknown_spec_field_rejected(self):
        payload = dict(BASE_SWEEP)
        payload["bogus_field"] = 1
        with pytest.raises(ScenarioError):
            SweepSpec.from_dict(payload)

    def test_empty_spec_rejected(self):
        with pytest.raises(ScenarioError):
            SweepSpec.from_dict({"name": "empty"})

    def test_beer_experiment_cells_expand(self):
        payload = dict(BASE_SWEEP)
        payload["experiments"] = [
            {"vendor": "A", "data_bits": 8, "rounds_per_window": [2, 4]}
        ]
        spec = SweepSpec.from_dict(payload)
        beer_cells = [cell for cell in spec.cells if cell.kind == "beer"]
        assert len(beer_cells) == 2
        assert {c.config()["rounds_per_window"] for c in beer_cells} == {2, 4}

    def test_beer_experiments_expand_over_seeds_and_backends(self):
        payload = dict(BASE_SWEEP)
        payload["seeds"] = [0, 1, 2]
        payload["backends"] = ["reference", "packed"]
        payload["experiments"] = [{"vendor": "A", "data_bits": 8}]
        spec = SweepSpec.from_dict(payload)
        beer_cells = [cell for cell in spec.cells if cell.kind == "beer"]
        assert len(beer_cells) == 6
        combos = {
            (c.config()["seed"], c.config()["backend"]) for c in beer_cells
        }
        assert combos == {(s, b) for s in (0, 1, 2) for b in ("reference", "packed")}

    def test_cell_key_covers_every_config_field(self):
        base = make_einsim_cell(
            "uniform-random", {"bit_error_rate": 0.01}, {"data_bits": 8}, 100
        )
        for override in (
            {"seed": 1},
            {"backend": "reference"},
            {"num_words": 101},
            {"chunk_size": 32},
            {"dataword": "zeros"},
            {"code": {"data_bits": 16}},
            {"params": {"bit_error_rate": 0.02}},
        ):
            kwargs = dict(
                scenario="uniform-random",
                params={"bit_error_rate": 0.01},
                code={"data_bits": 8},
                num_words=100,
            )
            kwargs.update(override)
            assert make_einsim_cell(**kwargs).key() != base.key()


class TestCellResolution:
    def test_deterministic_code_from_data_bits(self):
        assert resolve_code({"data_bits": 8}) == resolve_code({"data_bits": 8})

    def test_seeded_code_is_reproducible(self):
        first = resolve_code({"data_bits": 8, "code_seed": 3})
        second = resolve_code({"data_bits": 8, "code_seed": 3})
        assert first == second
        assert first != resolve_code({"data_bits": 8, "code_seed": 4})

    def test_explicit_parity_columns(self):
        code = resolve_code({"parity_columns": [3, 5, 6], "parity_bits": 3})
        assert code.parity_column_ints == (3, 5, 6)

    def test_dataword_patterns(self):
        assert resolve_dataword("ones", 4).tolist() == [1, 1, 1, 1]
        assert resolve_dataword("zeros", 4).tolist() == [0, 0, 0, 0]
        assert resolve_dataword("alternating", 4).tolist() == [0, 1, 0, 1]
        assert resolve_dataword([1, 0, 1, 1], 4).tolist() == [1, 0, 1, 1]

    def test_bad_dataword_rejected(self):
        with pytest.raises(ScenarioError):
            resolve_dataword("rainbow", 4)
        with pytest.raises(ScenarioError):
            resolve_dataword([1, 0], 4)


class TestSweepRunner:
    def test_same_seed_produces_byte_identical_stores(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        contents = []
        for name in ("first", "second"):
            store = CampaignStore(tmp_path / name)
            SweepRunner(store=store).run(spec)
            contents.append((tmp_path / name / "records.jsonl").read_bytes())
        assert contents[0] == contents[1]

    def test_second_invocation_served_entirely_from_cache(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        store = CampaignStore(tmp_path / "camp")
        first = SweepRunner(store=store).run(spec)
        assert first.simulated == spec.num_cells and first.cached == 0

        # Re-open the store (fresh process simulation) and re-run: zero cells
        # may be simulated again.
        reopened = CampaignStore(tmp_path / "camp")
        second = SweepRunner(store=reopened).run(spec)
        assert second.simulated == 0
        assert second.cached == spec.num_cells
        assert second.completed

    def test_interrupted_sweep_resumes_to_identical_store(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)

        uninterrupted = CampaignStore(tmp_path / "full")
        SweepRunner(store=uninterrupted).run(spec)

        interrupted = CampaignStore(tmp_path / "partial")
        partial = SweepRunner(store=interrupted).run(spec, max_new_simulations=1)
        assert not partial.completed
        assert partial.simulated == 1

        resumed = SweepRunner(store=CampaignStore(tmp_path / "partial")).run(spec)
        assert resumed.completed
        assert resumed.simulated == spec.num_cells - 1
        assert (tmp_path / "partial" / "records.jsonl").read_bytes() == (
            tmp_path / "full" / "records.jsonl"
        ).read_bytes()

    def test_results_identical_across_process_counts(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        serial = SweepRunner(store=CampaignStore(tmp_path / "serial"))
        parallel = SweepRunner(store=CampaignStore(tmp_path / "parallel"), processes=2)
        serial.run(spec)
        parallel.run(spec)
        assert (tmp_path / "serial" / "records.jsonl").read_bytes() == (
            tmp_path / "parallel" / "records.jsonl"
        ).read_bytes()

    def test_backends_produce_identical_results(self, tmp_path):
        payload = dict(BASE_SWEEP)
        payload["backends"] = ["reference", "packed"]
        payload["scenarios"] = [
            {
                "name": "transient-stuck-overlay",
                "params": {"transient_probability": 0.01, "stuck_fraction": 0.05},
            },
            {"name": "data-retention-mixed", "params": {"bit_error_rate": 0.02}},
        ]
        spec = SweepSpec.from_dict(payload)
        store = CampaignStore(tmp_path / "camp")
        SweepRunner(store=store).run(spec)
        by_config = {}
        for record in store.records():
            config = dict(record.config)
            backend = config.pop("backend")
            by_config.setdefault(str(sorted(config.items())), {})[backend] = (
                record.result
            )
        assert len(by_config) == 2
        for results in by_config.values():
            assert results["reference"] == results["packed"]

    def test_runner_without_store_still_runs(self):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        report = SweepRunner().run(spec)
        assert report.simulated == spec.num_cells
        assert report.cached == 0

    def test_beer_cell_produces_solvable_profile(self, tmp_path):
        from repro.core import BeerSolver
        from repro.core.profile import MiscorrectionProfile
        from repro.scenarios import make_beer_cell

        cell = make_beer_cell(vendor="B", data_bits=8, rounds_per_window=6)
        result = SweepRunner().run_cell(cell)
        profile = MiscorrectionProfile.from_dict(result["profile"])
        solution = BeerSolver(8).solve(profile)
        assert solution.num_solutions >= 1

    def test_fixed_error_count_statistics_through_runner(self):
        # A scenario with exactly two errors per word makes every word
        # uncorrectable under SEC decoding — visible end to end.
        cell = make_einsim_cell(
            "fixed-error-count",
            {"num_errors": 2},
            {"data_bits": 8},
            num_words=200,
            chunk_size=64,
        )
        result = SweepRunner().run_cell(cell)
        assert result["uncorrectable_words"] == 200
        assert sum(result["pre_correction_error_counts"]) == 400

    def test_unknown_vendor_raises_a_clear_repro_error(self):
        from repro.exceptions import ReproError
        from repro.scenarios import ExperimentCell, make_beer_cell

        reference = make_beer_cell(vendor="A", data_bits=8).config()
        reference["vendor"] = "Z"  # bypass make_beer_cell's own validation
        cell = ExperimentCell.from_config(reference)
        with pytest.raises(ReproError, match=r"unknown vendor 'Z'.*'A', 'B', 'C'"):
            SweepRunner().run_cell(cell)


class TestParallelSweepRunner:
    """jobs=N fan-out must be invisible in the store's bytes."""

    def test_parallel_store_is_byte_identical_to_serial(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        serial = SweepRunner(store=CampaignStore(tmp_path / "serial"))
        parallel = SweepRunner(store=CampaignStore(tmp_path / "parallel"), jobs=4)
        serial_report = serial.run(spec)
        parallel_report = parallel.run(spec)
        assert serial_report.to_dict() == parallel_report.to_dict()
        assert parallel_report.simulated == spec.num_cells
        assert (tmp_path / "serial" / "records.jsonl").read_bytes() == (
            tmp_path / "parallel" / "records.jsonl"
        ).read_bytes()

    def test_parallel_outcomes_arrive_in_spec_order(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        seen = []
        report = SweepRunner(store=CampaignStore(tmp_path / "camp"), jobs=3).run(
            spec, progress=seen.append
        )
        assert [o.cell for o in report.outcomes] == list(spec.cells)
        assert [o.cell for o in seen] == list(spec.cells)

    def test_parallel_run_resumes_an_interrupted_serial_sweep(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        full = CampaignStore(tmp_path / "full")
        SweepRunner(store=full).run(spec)

        partial = SweepRunner(store=CampaignStore(tmp_path / "partial"))
        assert not partial.run(spec, max_new_simulations=1).completed

        resumed = SweepRunner(
            store=CampaignStore(tmp_path / "partial"), jobs=2
        ).run(spec)
        assert resumed.completed
        assert resumed.cached == 1 and resumed.simulated == spec.num_cells - 1
        assert (tmp_path / "partial" / "records.jsonl").read_bytes() == (
            tmp_path / "full" / "records.jsonl"
        ).read_bytes()

    def test_parallel_sweep_resumes_after_a_torn_tail_crash(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        full = CampaignStore(tmp_path / "full")
        SweepRunner(store=full).run(spec)
        intact = (tmp_path / "full" / "records.jsonl").read_bytes()

        crashed = tmp_path / "crashed" / "records.jsonl"
        crashed.parent.mkdir()
        # The sweep died mid-append of its second record.
        torn_point = intact.find(b"\n") + 1
        crashed.write_bytes(intact[: torn_point + 40])

        report = SweepRunner(store=CampaignStore(tmp_path / "crashed"), jobs=2).run(
            spec
        )
        assert report.cached == 1 and report.simulated == spec.num_cells - 1
        assert crashed.read_bytes() == intact

    def test_parallel_rerun_is_fully_cached(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        store = CampaignStore(tmp_path / "camp")
        SweepRunner(store=store, jobs=2).run(spec)
        second = SweepRunner(store=CampaignStore(tmp_path / "camp"), jobs=2).run(spec)
        assert second.simulated == 0 and second.cached == spec.num_cells

    def test_max_new_simulations_budget_matches_serial_semantics(self, tmp_path):
        spec = SweepSpec.from_dict(BASE_SWEEP)
        report = SweepRunner(store=CampaignStore(tmp_path / "camp"), jobs=4).run(
            spec, max_new_simulations=2
        )
        assert not report.completed
        assert report.simulated == 2
        assert len(report.outcomes) == 2

    def test_jobs_must_be_positive(self):
        with pytest.raises(ScenarioError):
            SweepRunner(jobs=0)

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_duplicate_cells_in_a_spec_simulate_once(self, tmp_path, jobs):
        # SweepSpec.from_dict dedupes, but run() must not rely on that: a
        # hand-built spec repeating one cell simulates it once and serves
        # the repeat from the just-committed store record.
        cell = make_einsim_cell(
            "uniform-random", {"bit_error_rate": 0.01}, {"data_bits": 8}, 200,
            chunk_size=64,
        )
        spec = SweepSpec(name="dup", cells=(cell, cell, cell))
        report = SweepRunner(
            store=CampaignStore(tmp_path / f"camp{jobs}"), jobs=jobs
        ).run(spec)
        assert report.simulated == 1 and report.cached == 2
        lines = (tmp_path / f"camp{jobs}" / "records.jsonl").read_bytes()
        assert lines.count(b"\n") == 1


class TestCodeFamilySweeps:
    """code_family threads through specs, store keys, and resume behaviour."""

    FAMILY_SWEEP = {
        "name": "family-matrix",
        "num_words": 200,
        "chunk_size": 64,
        "seeds": [0],
        "backends": ["packed"],
        "codes": [
            {"data_bits": 8},
            {"data_bits": 8, "code_family": "secded-extended-hamming"},
            {"data_bits": 8, "code_family": "parity-detect"},
            {"data_bits": 4, "code_family": "repetition"},
        ],
        "scenarios": [
            {"name": "uniform-random", "params": {"bit_error_rate": 0.02}},
        ],
    }

    def test_resolve_code_dispatches_on_family(self):
        assert resolve_code({"data_bits": 8}).family_name == "sec-hamming"
        secded = resolve_code(
            {"data_bits": 8, "code_family": "secded-extended-hamming"}
        )
        assert secded.family_name == "secded-extended-hamming"
        assert secded.minimum_distance() == 4
        parity = resolve_code({"data_bits": 8, "code_family": "parity-detect"})
        assert parity.detect_only and parity.num_parity_bits == 1
        repetition = resolve_code({"data_bits": 4, "code_family": "repetition"})
        assert repetition.codeword_length == 12

    def test_resolve_code_seeded_family_sampling(self):
        first = resolve_code(
            {"data_bits": 6, "code_family": "secded-extended-hamming",
             "code_seed": 9}
        )
        second = resolve_code(
            {"data_bits": 6, "code_family": "secded-extended-hamming",
             "code_seed": 9}
        )
        assert first == second
        assert first.family_name == "secded-extended-hamming"

    def test_resolve_code_unknown_family_is_scenario_error(self):
        with pytest.raises(ScenarioError, match="unknown code family"):
            resolve_code({"data_bits": 8, "code_family": "turbo"})

    def test_resolve_code_invalid_family_dimensions_is_scenario_error(self):
        with pytest.raises(ScenarioError, match="invalid code spec"):
            resolve_code(
                {"data_bits": 4, "parity_bits": 6, "code_family": "repetition"}
            )

    def test_family_cells_have_distinct_store_keys(self):
        spec = SweepSpec.from_dict(self.FAMILY_SWEEP)
        assert spec.num_cells == 4
        keys = {cell.key() for cell in spec.cells}
        assert len(keys) == 4
        families = [
            cell.config()["code"].get("code_family", "sec-hamming")
            for cell in spec.cells
        ]
        assert families == [
            "sec-hamming",
            "secded-extended-hamming",
            "parity-detect",
            "repetition",
        ]

    def test_mixed_family_sweep_records_family_and_due(self, tmp_path):
        store = CampaignStore(tmp_path / "campaign")
        report = SweepRunner(store=store).run(SweepSpec.from_dict(self.FAMILY_SWEEP))
        assert report.simulated == 4
        by_family = {
            record.result["code_family"]: record.result
            for record in store.records()
        }
        assert set(by_family) == {
            "sec-hamming",
            "secded-extended-hamming",
            "parity-detect",
            "repetition",
        }
        # Detect-only parity words never miscorrect; they produce DUEs.
        assert by_family["parity-detect"]["miscorrected_words"] == 0
        assert by_family["parity-detect"]["detected_words"] > 0
        assert by_family["secded-extended-hamming"]["detected_words"] > 0

    def test_mixed_family_resume_is_byte_identical(self, tmp_path):
        spec = SweepSpec.from_dict(self.FAMILY_SWEEP)
        uninterrupted = CampaignStore(tmp_path / "full")
        SweepRunner(store=uninterrupted).run(spec)

        resumed = CampaignStore(tmp_path / "resumed")
        partial = SweepRunner(store=resumed).run(spec, max_new_simulations=2)
        assert not partial.completed
        final = SweepRunner(store=CampaignStore(tmp_path / "resumed")).run(spec)
        assert final.completed and final.cached == 2 and final.simulated == 2

        assert (tmp_path / "full" / "records.jsonl").read_bytes() == (
            tmp_path / "resumed" / "records.jsonl"
        ).read_bytes()

    def test_mixed_family_parallel_jobs_byte_identical(self, tmp_path):
        spec = SweepSpec.from_dict(self.FAMILY_SWEEP)
        serial = CampaignStore(tmp_path / "serial")
        SweepRunner(store=serial).run(spec)
        parallel = CampaignStore(tmp_path / "parallel")
        SweepRunner(store=parallel, jobs=2).run(spec)
        assert (tmp_path / "serial" / "records.jsonl").read_bytes() == (
            tmp_path / "parallel" / "records.jsonl"
        ).read_bytes()

    def test_explicit_columns_default_parity_bits_follow_family(self):
        # Regression: the default r for explicit parity_columns used to come
        # from SEC-Hamming's min_parity_bits, spuriously rejecting valid
        # SECDED column specs.
        code = resolve_code(
            {"parity_columns": [7, 11, 13],
             "code_family": "secded-extended-hamming"}
        )
        assert code.num_parity_bits == 4
        assert code.family_name == "secded-extended-hamming"

    def test_repetition_code_beyond_table_limit_is_scenario_error(self):
        with pytest.raises(ScenarioError, match="table-decode limit"):
            resolve_code({"data_bits": 16, "code_family": "repetition"})


class TestBeerCellSolve:
    """The opt-in solve flag: SAT stats ride the cell result into reports."""

    def test_solve_flag_absent_by_default_keeps_historical_keys(self):
        from repro.scenarios import make_beer_cell

        plain = make_beer_cell(vendor="A", data_bits=8)
        assert "solve" not in plain.config()
        solving = make_beer_cell(vendor="A", data_bits=8, solve=True)
        assert solving.config()["solve"] is True
        assert plain.key() != solving.key()

    def test_solved_cell_records_solver_stats(self, tmp_path):
        from repro.scenarios import make_beer_cell
        from repro.store import CampaignStore

        cell = make_beer_cell(
            vendor="B", data_bits=8, rounds_per_window=6, solve=True
        )
        store = CampaignStore(tmp_path)
        outcome = SweepRunner(store=store).run_one(cell)
        result = outcome.record.result
        assert result["num_solutions"] >= 1
        stats = result["solver_stats"]
        assert stats["propagations"] > 0
        assert set(stats) >= {"conflicts", "decisions", "propagations"}

        from repro.analysis import campaign_report_data

        (row,) = campaign_report_data(store)["beer_campaigns"]
        assert row["solved_cells"] == 1
        assert row["sat_propagations"] == stats["propagations"]
        assert row["sat_conflicts"] == stats["conflicts"]

    def test_unsolved_cells_report_zero_sat_effort(self, tmp_path):
        from repro.analysis import campaign_report_data
        from repro.scenarios import make_beer_cell
        from repro.store import CampaignStore

        store = CampaignStore(tmp_path)
        cell = make_beer_cell(vendor="A", data_bits=8, rounds_per_window=4)
        SweepRunner(store=store).run_one(cell)
        (row,) = campaign_report_data(store)["beer_campaigns"]
        assert row["solved_cells"] == 0
        assert row["sat_conflicts"] == 0

    def test_scenario_report_cli_prints_sat_lines(self, tmp_path, capsys):
        from repro.cli import main
        from repro.scenarios import make_beer_cell
        from repro.store import CampaignStore

        store = CampaignStore(tmp_path)
        cell = make_beer_cell(
            vendor="B", data_bits=8, rounds_per_window=6, solve=True
        )
        SweepRunner(store=store).run_one(cell)
        assert main(["scenario", "report", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "SAT (1 solved cells)" in out
        assert "propagations" in out
