"""Tests for the `bench trend` report over directories of merged runs."""

import json

import pytest

from repro.bench.schema import BenchRun, ConditionRecord, WorkloadRecord
from repro.bench.trend import format_trend_text, load_runs, trend_data


def _run_file(tmp_path, name, speedup, extra_metrics=None):
    metrics = {"speedup": speedup}
    metrics.update(extra_metrics or {})
    run = BenchRun(
        tier="quick",
        environment={"usable_cpus": 4},
        workloads=[
            WorkloadRecord(
                workload="gf2-backends",
                params={},
                conditions=[
                    ConditionRecord(
                        condition="bulk-decode:packed",
                        metrics=metrics,
                        oracles={"bit_identical": True},
                    )
                ],
            )
        ],
    )
    path = tmp_path / name
    run.write(path)
    return path


class TestLoadRuns:
    def test_ordered_by_filename(self, tmp_path):
        _run_file(tmp_path, "run-002.json", 2.0)
        _run_file(tmp_path, "run-001.json", 1.0)
        names = [name for name, _ in load_runs(tmp_path)]
        assert names == ["run-001.json", "run-002.json"]

    def test_non_run_json_is_skipped(self, tmp_path):
        _run_file(tmp_path, "run-001.json", 1.0)
        (tmp_path / "report.json").write_text(json.dumps({"ok": True}))
        (tmp_path / "notes.json").write_text("not even json {")
        assert len(load_runs(tmp_path)) == 1

    def test_missing_directory_raises(self, tmp_path):
        from repro.bench.schema import SchemaError

        with pytest.raises(SchemaError):
            load_runs(tmp_path / "absent")

    def test_order_stable_under_shuffled_filesystem(self, tmp_path, monkeypatch):
        """load_runs must not depend on the order the OS returns entries.

        Path.glob yields entries in on-disk order, which varies across
        filesystems and creation histories; this simulates a hostile
        filesystem by reversing and interleaving the glob result and
        asserts the loaded sequence is unchanged (the RPR101 invariant).
        """
        from pathlib import Path

        for index in range(6):
            _run_file(tmp_path, f"run-{index:03}.json", float(index))
        baseline = [name for name, _ in load_runs(tmp_path)]

        real_glob = Path.glob

        def hostile_glob(self, pattern):
            entries = list(real_glob(self, pattern))
            shuffled = entries[::-2] + entries[-2::-2]  # deterministic scramble
            return iter(shuffled)

        monkeypatch.setattr(Path, "glob", hostile_glob)
        shuffled_names = [name for name, _ in load_runs(tmp_path)]
        assert shuffled_names == baseline == [f"run-{i:03}.json" for i in range(6)]


class TestTrendData:
    def test_series_track_gated_metrics_across_runs(self, tmp_path):
        _run_file(tmp_path, "a.json", 1.0)
        _run_file(tmp_path, "b.json", 1.5)
        data = trend_data(load_runs(tmp_path))
        (row,) = [r for r in data["series"] if r["metric"] == "speedup"]
        assert row["values"] == [1.0, 1.5]
        assert row["rel_change"] == pytest.approx(0.5)

    def test_explicit_metrics_override_gates(self, tmp_path):
        _run_file(tmp_path, "a.json", 1.0, {"obs.words": 100})
        _run_file(tmp_path, "b.json", 2.0, {"obs.words": 300})
        data = trend_data(load_runs(tmp_path), metrics=["obs.words"])
        (row,) = data["series"]
        assert row["metric"] == "obs.words"
        assert row["rel_change"] == pytest.approx(2.0)

    def test_missing_values_render_as_holes(self, tmp_path):
        _run_file(tmp_path, "a.json", 1.0, {"obs.words": 100})
        _run_file(tmp_path, "b.json", 2.0)
        data = trend_data(load_runs(tmp_path), metrics=["obs.words"])
        (row,) = data["series"]
        assert row["values"] == [100.0, None]
        # a single present endpoint: change still computes first→last present
        assert row["rel_change"] == pytest.approx(0.0)

    def test_workload_filter(self, tmp_path):
        _run_file(tmp_path, "a.json", 1.0)
        data = trend_data(load_runs(tmp_path), workloads=["other"])
        assert data["series"] == []

    def test_format_renders_holes_and_changes(self, tmp_path):
        _run_file(tmp_path, "a.json", 1.0, {"obs.words": 100})
        _run_file(tmp_path, "b.json", 2.0)
        text = format_trend_text(
            trend_data(load_runs(tmp_path), metrics=["obs.words", "speedup"])
        )
        lines = text.splitlines()
        assert lines[0] == "bench trend: 2 runs [tier(s): quick]"
        (row,) = [line for line in lines if "obs.words" in line]
        assert "100" in row and "-" in row  # the missing second value
        (row,) = [line for line in lines if "speedup" in line and "metric" not in line]
        assert "+100.0%" in row


class TestTrendCli:
    def test_text_report(self, tmp_path, capsys):
        from repro.cli import main

        _run_file(tmp_path, "a.json", 1.0)
        _run_file(tmp_path, "b.json", 1.25)
        assert main(["bench", "trend", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench trend: 2 runs" in out
        assert "speedup" in out and "+25.0%" in out

    def test_json_report(self, tmp_path, capsys):
        from repro.cli import main

        _run_file(tmp_path, "a.json", 1.0)
        assert main(["bench", "trend", str(tmp_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_runs"] == 1

    def test_empty_directory_fails_clearly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "trend", str(tmp_path)]) == 2
        assert "no merged bench-run files" in capsys.readouterr().err
