"""Unit tests for Hamming code construction and the design space."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodeConstructionError
from repro.ecc import (
    example_7_4_code,
    full_length_data_bits,
    hamming_code,
    min_parity_bits,
    random_hamming_code,
)
from repro.ecc.hamming import (
    candidate_parity_columns,
    count_sec_functions,
    is_shortened,
    parity_columns_of,
)


class TestDimensionHelpers:
    def test_min_parity_bits_known_values(self):
        # Full-length SEC Hamming codes: k = 2^r - r - 1.
        assert min_parity_bits(1) == 2
        assert min_parity_bits(4) == 3
        assert min_parity_bits(11) == 4
        assert min_parity_bits(26) == 5
        assert min_parity_bits(57) == 6
        assert min_parity_bits(64) == 7
        assert min_parity_bits(120) == 7
        assert min_parity_bits(128) == 8
        assert min_parity_bits(247) == 8

    def test_min_parity_bits_rejects_zero(self):
        with pytest.raises(CodeConstructionError):
            min_parity_bits(0)

    def test_full_length_data_bits(self):
        assert full_length_data_bits(3) == 4
        assert full_length_data_bits(4) == 11
        assert full_length_data_bits(5) == 26
        assert full_length_data_bits(6) == 57
        assert full_length_data_bits(7) == 120
        assert full_length_data_bits(8) == 247

    def test_full_length_rejects_tiny_r(self):
        with pytest.raises(CodeConstructionError):
            full_length_data_bits(1)

    def test_candidate_columns_count(self):
        for r in range(2, 9):
            assert len(candidate_parity_columns(r)) == (1 << r) - r - 1

    def test_candidate_columns_have_weight_at_least_two(self):
        for column in candidate_parity_columns(5):
            assert bin(column).count("1") >= 2


class TestHammingConstruction:
    def test_default_construction_is_sec(self):
        for k in [4, 8, 16, 32, 57, 64]:
            code = hamming_code(k)
            assert code.num_data_bits == k
            assert code.is_single_error_correcting()
            assert code.minimum_distance() == 3

    def test_explicit_parity_bits(self):
        code = hamming_code(4, num_parity_bits=4)
        assert code.num_parity_bits == 4
        assert is_shortened(code)

    def test_full_length_code_not_shortened(self):
        assert not is_shortened(hamming_code(11, num_parity_bits=4))
        assert not is_shortened(hamming_code(4, num_parity_bits=3))

    def test_explicit_columns(self):
        code = hamming_code(2, num_parity_bits=3, columns=[0b110, 0b011])
        assert code.parity_column_ints == (0b110, 0b011)

    def test_explicit_columns_wrong_count(self):
        with pytest.raises(CodeConstructionError):
            hamming_code(3, num_parity_bits=3, columns=[0b110, 0b011])

    def test_explicit_columns_duplicate(self):
        with pytest.raises(CodeConstructionError):
            hamming_code(2, num_parity_bits=3, columns=[0b011, 0b011])

    def test_explicit_columns_weight_one_rejected(self):
        with pytest.raises(CodeConstructionError):
            hamming_code(2, num_parity_bits=3, columns=[0b001, 0b011])

    def test_explicit_columns_out_of_range(self):
        with pytest.raises(CodeConstructionError):
            hamming_code(2, num_parity_bits=3, columns=[0b1100, 0b011])

    def test_too_many_data_bits_for_parity_bits(self):
        with pytest.raises(CodeConstructionError):
            hamming_code(5, num_parity_bits=3)

    def test_example_code_matches_paper(self):
        code = example_7_4_code()
        assert code.num_data_bits == 4
        assert code.parity_column_ints == (0b111, 0b011, 0b101, 0b110)
        assert code.is_single_error_correcting()

    def test_parity_columns_of(self):
        code = example_7_4_code()
        columns = parity_columns_of(code)
        assert [c.to_int() for c in columns] == list(code.parity_column_ints)


class TestRandomCodes:
    def test_random_code_is_sec(self):
        rng = np.random.default_rng(0)
        for k in [4, 11, 16, 32, 64, 128]:
            code = random_hamming_code(k, rng=rng)
            assert code.num_data_bits == k
            assert code.is_single_error_correcting()

    def test_random_code_reproducible_with_seed(self):
        first = random_hamming_code(16, rng=np.random.default_rng(42))
        second = random_hamming_code(16, rng=np.random.default_rng(42))
        assert first == second

    def test_random_codes_differ_across_seeds(self):
        codes = {
            random_hamming_code(16, rng=np.random.default_rng(seed)).parity_column_ints
            for seed in range(8)
        }
        assert len(codes) > 1

    def test_random_code_rejects_impossible_dimensions(self):
        with pytest.raises(CodeConstructionError):
            random_hamming_code(5, num_parity_bits=3)

    def test_random_code_without_explicit_rng(self):
        code = random_hamming_code(8)
        assert code.num_data_bits == 8


class TestDesignSpace:
    def test_count_matches_permutation_formula(self):
        assert count_sec_functions(4, 3) == math.perm(4, 4)
        assert count_sec_functions(4, 4) == math.perm(11, 4)
        assert count_sec_functions(11, 4) == math.perm(11, 11)

    def test_count_zero_when_impossible(self):
        assert count_sec_functions(5, 3) == 0

    def test_count_default_parity_bits(self):
        assert count_sec_functions(4) == math.perm(4, 4)

    def test_design_space_grows_with_shortening_slack(self):
        assert count_sec_functions(4, 4) > count_sec_functions(4, 3)


class TestRandomCodeProperties:
    @given(st.integers(min_value=4, max_value=40), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_random_codes_always_valid(self, num_data_bits, seed):
        code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
        assert code.is_single_error_correcting()
        assert code.num_parity_bits == min_parity_bits(num_data_bits)
        for column in code.parity_column_ints:
            assert bin(column).count("1") >= 2
