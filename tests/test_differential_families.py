"""Differential guarantees for the pluggable code families.

Two locks:

* the packed engine's decode outcomes (corrected words *and* DUE masks) are
  bit-identical to the reference backend for every family — the fast path
  must encode "detect, don't flip" exactly like the oracle;
* BEER — both the backtracking and the SAT backend — recovers an injected
  SECDED extended-Hamming function uniquely up to code equivalence from a
  simulated miscorrection(+DUE) profile, searching the SECDED design space.
"""

import numpy as np
import pytest

from repro.gf2 import GF2Vector
from repro.ecc import SyndromeDecoder, classify_decode, codes_equivalent, get_family
from repro.ecc.decoder import DecodeOutcome
from repro.einsim.engine import bulk_decode, bulk_decode_outcomes, bulk_encode
from repro.einsim.simulator import EinsimSimulator
from repro.einsim.injectors import UniformRandomInjector
from repro.core.beer import BeerSolver
from repro.core.beer_sat import SatBeerSolver
from repro.core.patterns import charged_patterns
from repro.core.profile import (
    expected_miscorrection_profile,
    monte_carlo_observation_counts,
)


def family_codes():
    """One representative code per family (ids used as pytest parameters)."""
    return [
        ("sec-hamming", get_family("sec-hamming").construct(8)),
        (
            "secded-extended-hamming",
            get_family("secded-extended-hamming").random(
                8, rng=np.random.default_rng(11)
            ),
        ),
        ("parity-detect", get_family("parity-detect").construct(8)),
        ("repetition-3x", get_family("repetition").construct(5)),
        ("repetition-2x-detect", get_family("repetition").construct(5, 5)),
    ]


@pytest.fixture(params=family_codes(), ids=lambda pair: pair[0])
def family_code(request):
    return request.param[1]


class TestPackedMatchesReferencePerFamily:
    def test_bulk_decode_outcomes_bit_identical(self, family_code):
        code = family_code
        rng = np.random.default_rng(5)
        received = rng.integers(
            0, 2, size=(512, code.codeword_length), dtype=np.uint8
        )
        ref_corrected, ref_due = bulk_decode_outcomes(code, received, "reference")
        fast_corrected, fast_due = bulk_decode_outcomes(code, received, "packed")
        np.testing.assert_array_equal(ref_corrected, fast_corrected)
        np.testing.assert_array_equal(ref_due, fast_due)
        np.testing.assert_array_equal(
            bulk_decode(code, received, "reference"),
            bulk_decode(code, received, "packed"),
        )

    def test_bulk_encode_bit_identical(self, family_code):
        code = family_code
        rng = np.random.default_rng(6)
        datawords = rng.integers(0, 2, size=(256, code.num_data_bits), dtype=np.uint8)
        np.testing.assert_array_equal(
            bulk_encode(code, datawords, "reference"),
            bulk_encode(code, datawords, "packed"),
        )

    def test_engine_matches_scalar_decoder(self, family_code):
        code = family_code
        decoder = SyndromeDecoder(code)
        rng = np.random.default_rng(7)
        received = rng.integers(0, 2, size=(64, code.codeword_length), dtype=np.uint8)
        corrected, due = bulk_decode_outcomes(code, received, "packed")
        for row in range(received.shape[0]):
            result = decoder.decode(GF2Vector(received[row]))
            assert corrected[row].tolist() == result.corrected_codeword.to_list()
            assert bool(due[row]) == result.detected_uncorrectable

    def test_simulator_backends_agree_including_due(self, family_code):
        code = family_code
        results = {}
        for backend in ("reference", "packed"):
            simulator = EinsimSimulator(code, seed=42, backend=backend)
            results[backend] = simulator.simulate(
                np.ones(code.num_data_bits, dtype=np.uint8),
                2_000,
                UniformRandomInjector(0.02),
            )
        reference, packed = results["reference"], results["packed"]
        assert reference.detected_words == packed.detected_words
        assert reference.uncorrectable_words == packed.uncorrectable_words
        assert reference.miscorrected_words == packed.miscorrected_words
        np.testing.assert_array_equal(
            reference.post_correction_error_counts,
            packed.post_correction_error_counts,
        )


class TestFamilyDueSemantics:
    def test_secded_every_double_error_is_due_in_bulk(self):
        code = get_family("secded-extended-hamming").construct(8)
        codeword = bulk_encode(
            code, np.ones((1, 8), dtype=np.uint8), "packed"
        )[0]
        words = []
        for a in range(code.codeword_length):
            for b in range(a + 1, code.codeword_length):
                word = codeword.copy()
                word[a] ^= 1
                word[b] ^= 1
                words.append(word)
        received = np.asarray(words, dtype=np.uint8)
        corrected, due = bulk_decode_outcomes(code, received, "packed")
        assert due.all()
        np.testing.assert_array_equal(corrected, received)  # nothing flipped

    def test_detect_only_family_never_flips_in_bulk(self):
        code = get_family("parity-detect").construct(8)
        rng = np.random.default_rng(9)
        received = rng.integers(0, 2, size=(128, 9), dtype=np.uint8)
        corrected, due = bulk_decode_outcomes(code, received, "packed")
        np.testing.assert_array_equal(corrected, received)
        syndromes = received.sum(axis=1) % 2
        np.testing.assert_array_equal(due, syndromes == 1)

    def test_simulator_counts_due_for_detect_only_family(self):
        code = get_family("repetition").construct(4, 4)  # duplication
        simulator = EinsimSimulator(code, seed=0, backend="packed")
        result = simulator.simulate(
            np.ones(4, dtype=np.uint8), 2_000, UniformRandomInjector(0.05)
        )
        assert result.detected_words > 0
        assert result.miscorrected_words == 0
        # Any injected error is uncorrectable for a detect-only code.
        assert result.uncorrectable_words >= result.detected_words


# A SECDED member whose weight-{1,2} profile pins it uniquely (verified by
# exhaustive search in both backends below).
SECDED_K, SECDED_R, SECDED_SEED = 4, 5, 2


def _injected_secded_code():
    return get_family("secded-extended-hamming").random(
        SECDED_K, SECDED_R, rng=np.random.default_rng(SECDED_SEED)
    )


def _simulated_profile(code):
    """Miscorrection(+DUE) profile measured by Monte-Carlo simulation."""
    patterns = list(charged_patterns(code.num_data_bits, [1, 2]))
    counts = monte_carlo_observation_counts(
        code,
        patterns,
        bit_error_rate=0.35,
        words_per_pattern=4_000,
        rng=np.random.default_rng(123),
        backend="packed",
    )
    return counts, counts.to_profile()


class TestSecdedBeerRecovery:
    def test_simulated_profile_converges_to_ground_truth(self):
        code = _injected_secded_code()
        counts, profile = _simulated_profile(code)
        expected = expected_miscorrection_profile(code, profile.patterns)
        for pattern in profile.patterns:
            assert profile.miscorrections(pattern) == expected.miscorrections(
                pattern
            )
        # Detection is part of the simulated signal: double errors are DUEs.
        assert counts.total_due_words > 0

    def test_backtracking_recovers_uniquely_up_to_equivalence(self):
        code = _injected_secded_code()
        _, profile = _simulated_profile(code)
        solver = BeerSolver(SECDED_K, SECDED_R, family="secded-extended-hamming")
        solution = solver.check_uniqueness(profile)
        assert solution.unique
        assert codes_equivalent(solution.code, code)
        assert solution.family == "secded-extended-hamming"
        recovered = solution.code
        assert recovered.family_name == "secded-extended-hamming"
        # The odd-weight constraint shrinks the searched design space, and
        # the solver reports it: 11 legal 5-bit columns vs SEC's 26.
        assert solution.design_space_columns == 11

    def test_sat_backend_recovers_uniquely_up_to_equivalence(self):
        code = _injected_secded_code()
        _, profile = _simulated_profile(code)
        solver = SatBeerSolver(SECDED_K, SECDED_R, family="secded-extended-hamming")
        solution = solver.solve(profile)
        assert solution.unique
        assert codes_equivalent(solution.code, code)
        assert solution.design_space_columns == 11
        assert solution.solver_stats is not None

    def test_backends_enumerate_identical_solution_sets(self):
        # On a profile with *several* consistent SECDED functions the two
        # backends must agree on the full set of equivalence classes.
        from repro.ecc.codespace import canonical_form

        code = get_family("secded-extended-hamming").random(
            SECDED_K, SECDED_R, rng=np.random.default_rng(1)
        )
        profile = expected_miscorrection_profile(
            code, list(charged_patterns(SECDED_K, [1, 2]))
        )
        fast = BeerSolver(
            SECDED_K, SECDED_R, family="secded-extended-hamming"
        ).solve(profile)
        sat = SatBeerSolver(
            SECDED_K, SECDED_R, family="secded-extended-hamming"
        ).solve(profile)
        assert fast.num_solutions == sat.num_solutions > 0
        assert {canonical_form(c) for c in fast.codes} == {
            canonical_form(c) for c in sat.codes
        }

    def test_every_candidate_respects_the_family_design_space(self):
        code = _injected_secded_code()
        _, profile = _simulated_profile(code)
        family = get_family("secded-extended-hamming")
        for solver in (
            BeerSolver(SECDED_K, SECDED_R, family="secded-extended-hamming"),
            SatBeerSolver(SECDED_K, SECDED_R, family="secded-extended-hamming"),
        ):
            for candidate in solver.solve(profile).codes:
                assert family.is_member(candidate)

    def test_sec_solver_on_secded_profile_does_not_find_the_code(self):
        # Searching the wrong family's design space must not silently return
        # the injected SECDED function: SEC's weight->=2 space contains the
        # odd-weight columns too, but the recovered set differs (no longer
        # unique) -- the family constraint is load-bearing.
        code = _injected_secded_code()
        _, profile = _simulated_profile(code)
        sec_solution = BeerSolver(SECDED_K, SECDED_R, family="sec-hamming").solve(
            profile
        )
        secded_solution = BeerSolver(
            SECDED_K, SECDED_R, family="secded-extended-hamming"
        ).solve(profile)
        assert sec_solution.num_solutions > secded_solution.num_solutions


class TestDetectOnlyFamiliesRejectBeer:
    def test_backtracking_solver_rejects_fixed_structure_families(self):
        from repro.exceptions import SolverError

        for name in ("parity-detect", "repetition"):
            with pytest.raises(SolverError, match="fixed structure"):
                BeerSolver(4, family=name)

    def test_sat_solver_rejects_fixed_structure_families(self):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError, match="fixed structure"):
            SatBeerSolver(4, family="parity-detect")


class TestClassifyAcrossFamilies:
    def test_single_errors_classified_per_family_policy(self, family_code):
        code = family_code
        codeword = code.encode(GF2Vector([1] * code.num_data_bits))
        expected = (
            DecodeOutcome.DETECTED_UNCORRECTABLE
            if code.detect_only
            else DecodeOutcome.CORRECTED
        )
        for position in range(code.codeword_length):
            outcome = classify_decode(code, codeword, codeword.flip(position))
            assert outcome == expected
