"""Unit tests for k-CHARGED test patterns."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProfileError
from repro.dram import CellType
from repro.gf2 import GF2Vector
from repro.core import ChargedPattern, charged_patterns, one_charged_patterns
from repro.core.patterns import pattern_count


class TestChargedPattern:
    def test_basic_properties(self):
        pattern = ChargedPattern(8, [1, 5])
        assert pattern.num_data_bits == 8
        assert pattern.charged_bits == frozenset({1, 5})
        assert pattern.discharged_bits == frozenset({0, 2, 3, 4, 6, 7})
        assert pattern.weight == 2

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ProfileError):
            ChargedPattern(4, [4])
        with pytest.raises(ProfileError):
            ChargedPattern(0, [])

    def test_true_cell_dataword_sets_charged_bits_to_one(self):
        pattern = ChargedPattern(4, [2])
        assert pattern.dataword(CellType.TRUE_CELL) == GF2Vector([0, 0, 1, 0])

    def test_anti_cell_dataword_sets_charged_bits_to_zero(self):
        pattern = ChargedPattern(4, [2])
        assert pattern.dataword(CellType.ANTI_CELL) == GF2Vector([1, 1, 0, 1])

    def test_from_dataword_round_trip(self):
        pattern = ChargedPattern(6, [0, 3])
        for cell_type in CellType:
            recovered = ChargedPattern.from_dataword(pattern.dataword(cell_type), cell_type)
            assert recovered == pattern

    def test_equality_and_hash(self):
        assert ChargedPattern(4, [1]) == ChargedPattern(4, (1,))
        assert ChargedPattern(4, [1]) != ChargedPattern(4, [2])
        assert ChargedPattern(4, [1]) != ChargedPattern(5, [1])
        assert hash(ChargedPattern(4, [1])) == hash(ChargedPattern(4, [1]))

    def test_repr_lists_charged_bits(self):
        assert "1,3" in repr(ChargedPattern(4, [3, 1]))

    def test_empty_pattern_allowed(self):
        pattern = ChargedPattern(4, [])
        assert pattern.weight == 0
        assert pattern.dataword(CellType.TRUE_CELL).is_zero()


class TestPatternGenerators:
    def test_one_charged_count(self):
        patterns = one_charged_patterns(16)
        assert len(patterns) == 16
        assert all(p.weight == 1 for p in patterns)
        assert len({p for p in patterns}) == 16

    def test_two_charged_count(self):
        patterns = list(charged_patterns(8, [2]))
        assert len(patterns) == math.comb(8, 2)
        assert all(p.weight == 2 for p in patterns)

    def test_mixed_weights(self):
        patterns = list(charged_patterns(6, [1, 2]))
        assert len(patterns) == 6 + 15

    def test_pattern_count_matches_generator(self):
        for weights in ([1], [2], [1, 2], [3]):
            generated = len(list(charged_patterns(10, weights)))
            assert pattern_count(10, weights) == generated

    def test_invalid_weight_rejected(self):
        with pytest.raises(ProfileError):
            list(charged_patterns(4, [5]))
        with pytest.raises(ProfileError):
            pattern_count(4, [-1])

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_generated_patterns_have_requested_weight(self, num_bits, weight):
        if weight > num_bits:
            return
        for pattern in charged_patterns(num_bits, [weight]):
            assert pattern.weight == weight
            assert pattern.num_data_bits == num_bits
