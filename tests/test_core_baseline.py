"""Tests for the direct-syndrome-readout baseline (Section 4.1)."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.gf2 import GF2Vector
from repro.ecc import codes_equivalent, example_7_4_code, hamming_code, random_hamming_code
from repro.core import BeerSolver, charged_patterns, expected_miscorrection_profile
from repro.core.baseline import (
    RankLevelEccInterface,
    reverse_engineer_with_syndromes,
    syndromes_match_code,
)


class TestRankLevelEccInterface:
    def test_single_error_syndrome_is_column(self):
        code = example_7_4_code()
        interface = RankLevelEccInterface(code)
        codeword = interface.encode(GF2Vector.zeros(4))
        for position in range(code.codeword_length):
            syndrome = interface.inject_and_report(codeword, [position])
            assert syndrome == code.column(position)

    def test_no_errors_zero_syndrome(self):
        code = hamming_code(8)
        interface = RankLevelEccInterface(code)
        codeword = interface.encode(GF2Vector.ones(8))
        assert interface.inject_and_report(codeword, []).is_zero()

    def test_noise_probability_validation(self):
        with pytest.raises(SolverError):
            RankLevelEccInterface(hamming_code(8), noise_probability=1.5)

    def test_dimensions_exposed(self):
        code = hamming_code(16)
        interface = RankLevelEccInterface(code)
        assert interface.num_data_bits == 16
        assert interface.codeword_length == code.codeword_length


class TestReverseEngineering:
    def test_recovers_exact_code(self):
        for seed in range(4):
            code = random_hamming_code(12, rng=np.random.default_rng(seed))
            interface = RankLevelEccInterface(code)
            recovered = reverse_engineer_with_syndromes(interface)
            assert recovered == code

    def test_recovers_paper_example(self):
        code = example_7_4_code()
        recovered = reverse_engineer_with_syndromes(RankLevelEccInterface(code))
        assert recovered == code

    def test_majority_vote_tolerates_noise(self):
        code = random_hamming_code(8, rng=np.random.default_rng(3))
        interface = RankLevelEccInterface(
            code, noise_probability=0.02, rng=np.random.default_rng(0)
        )
        recovered = reverse_engineer_with_syndromes(interface, trials_per_position=15)
        assert recovered == code

    def test_trials_validation(self):
        interface = RankLevelEccInterface(hamming_code(8))
        with pytest.raises(SolverError):
            reverse_engineer_with_syndromes(interface, trials_per_position=0)

    def test_syndromes_match_code_helper(self):
        code = random_hamming_code(10, rng=np.random.default_rng(7))
        other = random_hamming_code(10, rng=np.random.default_rng(8))
        interface = RankLevelEccInterface(code)
        assert syndromes_match_code(interface, code)
        if not codes_equivalent(code, other):
            assert not syndromes_match_code(interface, other)

    def test_mismatched_length_rejected_by_helper(self):
        interface = RankLevelEccInterface(hamming_code(8))
        assert not syndromes_match_code(interface, hamming_code(16))


class TestBaselineAgreesWithBeer:
    def test_baseline_and_beer_recover_equivalent_functions(self):
        # The baseline needs syndrome access and raw-codeword writes; BEER
        # needs neither.  When both are applicable they must agree.
        code = random_hamming_code(8, rng=np.random.default_rng(11))
        baseline_code = reverse_engineer_with_syndromes(RankLevelEccInterface(code))
        profile = expected_miscorrection_profile(
            code, list(charged_patterns(8, [1, 2]))
        )
        beer_code = BeerSolver(8).solve(profile).code
        assert codes_equivalent(baseline_code, beer_code)
