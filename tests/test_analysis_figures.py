"""Tests for the figure/table data generators (small parameterisations)."""

import numpy as np
import pytest

from repro.ecc import example_7_4_code
from repro.analysis import (
    figure1_error_probability_data,
    figure3_manufacturer_profile_data,
    figure4_threshold_data,
    figure5_uniqueness_data,
    figure6_runtime_data,
    figure8_beep_pass_data,
    figure9_beep_probability_data,
    table1_outcome_data,
    table2_miscorrection_profile_data,
)
from repro.analysis.figures import _data_bits_for_codeword_length


class TestFigure1:
    def test_shapes_and_normalisation(self):
        data = figure1_error_probability_data(
            num_data_bits=16, num_functions=2, bit_error_rate=1e-3,
            num_words=20_000, num_bootstrap=50, seed=0,
        )
        assert len(data["post_correction"]) == 2
        for entry in data["post_correction"]:
            relative = np.array(entry["relative_error_probability"])
            assert relative.shape == (16,)
            assert relative.sum() == pytest.approx(1.0, abs=1e-6) or relative.sum() == 0.0
        assert np.array(data["pre_correction_relative_probability"]).sum() == pytest.approx(1.0)

    def test_different_functions_have_different_profiles(self):
        data = figure1_error_probability_data(
            num_data_bits=16, num_functions=2, bit_error_rate=5e-3,
            num_words=30_000, num_bootstrap=20, seed=1,
        )
        first = np.array(data["post_correction"][0]["relative_error_probability"])
        second = np.array(data["post_correction"][1]["relative_error_probability"])
        assert not np.allclose(first, second)


class TestTable1:
    def test_row_count_is_all_subsets_of_charged_cells(self):
        rows = table1_outcome_data()
        assert len(rows) == 8  # 2^3 subsets of the three CHARGED cells

    def test_outcome_classification(self):
        rows = table1_outcome_data()
        by_size = {}
        for row in rows:
            by_size.setdefault(len(row["error_positions"]), []).append(row)
        assert all(r["outcome"] == "no error" for r in by_size[0])
        assert all(r["outcome"] == "correctable" for r in by_size[1])
        assert all(r["outcome"] == "uncorrectable" for r in by_size[2] + by_size[3])

    def test_single_error_syndromes_point_to_the_error(self):
        for row in table1_outcome_data():
            if len(row["error_positions"]) == 1:
                assert row["syndrome_points_to"] == row["error_positions"][0]

    def test_zero_subset_has_zero_syndrome(self):
        rows = table1_outcome_data()
        empty = next(r for r in rows if not r["error_positions"])
        assert empty["syndrome"] == [0, 0, 0]


class TestTable2:
    def test_matches_paper_table_2(self):
        rows = table2_miscorrection_profile_data()
        by_pattern = {row["pattern_id"]: row for row in rows}
        assert by_pattern[0]["possible_miscorrections"] == [1, 2, 3]
        for pattern_id in (1, 2, 3):
            assert by_pattern[pattern_id]["possible_miscorrections"] == []

    def test_row_cells_mark_charged_bit_ambiguous(self):
        for row in table2_miscorrection_profile_data():
            assert row["row_cells"][row["charged_bit"]] == "?"

    def test_rows_ordered_by_descending_pattern_id(self):
        ids = [row["pattern_id"] for row in table2_miscorrection_profile_data()]
        assert ids == sorted(ids, reverse=True)

    def test_custom_code(self):
        rows = table2_miscorrection_profile_data(example_7_4_code())
        assert len(rows) == 4


class TestFigure5:
    def test_combined_patterns_always_unique(self):
        data = figure5_uniqueness_data(
            dataword_lengths=(4, 6), codes_per_length=2, max_solutions=10, seed=0
        )
        combined = data["solution_counts"]["{1,2}-CHARGED"]
        for num_data_bits in (4, 6):
            assert combined[num_data_bits]["max"] == 1.0

    def test_full_length_codes_unique_for_single_weight_sets(self):
        data = figure5_uniqueness_data(
            dataword_lengths=(4,), codes_per_length=2, max_solutions=10, seed=1
        )
        assert data["solution_counts"]["1-CHARGED"][4]["max"] == 1.0

    def test_all_sets_report_every_length(self):
        data = figure5_uniqueness_data(
            dataword_lengths=(4, 5), codes_per_length=1, max_solutions=5, seed=2
        )
        for _set_name, by_length in data["solution_counts"].items():
            assert set(by_length) == {4, 5}
            for stats in by_length.values():
                assert stats["min"] >= 1.0


class TestFigure6:
    def test_runtime_rows_populated(self):
        data = figure6_runtime_data(dataword_lengths=(4, 8), codes_per_length=1, seed=0)
        assert len(data["rows"]) == 2
        for row in data["rows"]:
            assert row["determine_function_seconds"] >= 0.0
            assert row["check_uniqueness_seconds"] >= 0.0
            assert row["total_seconds"] >= row["determine_function_seconds"]
            assert row["peak_memory_mib"] > 0.0

    def test_uniqueness_check_dominates_for_larger_codes(self):
        data = figure6_runtime_data(dataword_lengths=(12,), codes_per_length=1, seed=1)
        row = data["rows"][0]
        assert row["check_uniqueness_seconds"] >= row["determine_function_seconds"]


class TestBeepFigures:
    def test_codeword_length_to_data_bits(self):
        assert _data_bits_for_codeword_length(7) == 4
        assert _data_bits_for_codeword_length(15) == 11
        assert _data_bits_for_codeword_length(31) == 26
        assert _data_bits_for_codeword_length(63) == 57
        assert _data_bits_for_codeword_length(127) == 120

    def test_invalid_codeword_length(self):
        with pytest.raises(ValueError):
            _data_bits_for_codeword_length(2)

    def test_figure8_rows_and_rates(self):
        data = figure8_beep_pass_data(
            codeword_lengths=(15, 31), error_counts=(2, 3), passes=(1, 2),
            codewords_per_point=4, seed=0,
        )
        assert len(data["rows"]) == 2 * 2 * 2
        for row in data["rows"]:
            assert 0.0 <= row["success_rate"] <= 1.0

    def test_figure8_second_pass_not_worse_on_aggregate(self):
        data = figure8_beep_pass_data(
            codeword_lengths=(31,), error_counts=(2, 3), passes=(1, 2),
            codewords_per_point=6, seed=1,
        )
        one_pass = np.mean([r["success_rate"] for r in data["rows"] if r["passes"] == 1])
        two_pass = np.mean([r["success_rate"] for r in data["rows"] if r["passes"] == 2])
        assert two_pass >= one_pass - 1e-9

    def test_figure9_rows(self):
        data = figure9_beep_probability_data(
            codeword_lengths=(15,), error_counts=(2, 3),
            per_bit_probabilities=(1.0, 0.5), codewords_per_point=4, seed=0,
        )
        assert len(data["rows"]) == 1 * 2 * 2
        for row in data["rows"]:
            assert 0.0 <= row["success_rate"] <= 1.0


@pytest.mark.slow
class TestChipFigures:
    def test_figure3_vendor_maps_differ(self):
        from repro.dram import ChipGeometry

        data = figure3_manufacturer_profile_data(
            num_data_bits=8,
            geometry=ChipGeometry(16, 8),
            refresh_windows_s=(30.0, 60.0),
            rounds_per_window=4,
            seed=0,
        )
        assert set(data) == {"A", "B", "C"}
        for vendor in data.values():
            assert vendor["error_count_matrix"].shape == (8, 8)
        assert not np.array_equal(
            data["A"]["error_count_matrix"], data["B"]["error_count_matrix"]
        )

    def test_figure4_separation(self):
        data = figure4_threshold_data(
            num_data_bits=8,
            refresh_windows_s=(30.0, 45.0, 60.0),
            rounds_per_window=4,
            transient_fault_probability=0.0,
            seed=0,
        )
        minima = np.array(data["per_bit_min"])
        susceptible = set(data["analytically_susceptible_bits"])
        non_susceptible = [b for b in range(8) if b not in susceptible]
        if susceptible and non_susceptible:
            # Bits that can never miscorrect show (near-)zero probability in
            # every window; susceptible bits show clearly non-zero medians.
            assert max(np.array(data["per_bit_median"])[non_susceptible]) <= min(
                np.array(data["per_bit_median"])[sorted(susceptible)]
            ) + 1e-9
        assert minima.shape == (8,)
