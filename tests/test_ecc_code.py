"""Unit tests for SystematicLinearCode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodeConstructionError, DimensionError
from repro.gf2 import GF2Matrix, GF2Vector
from repro.ecc import SystematicLinearCode, example_7_4_code, hamming_code


@pytest.fixture
def code_7_4():
    return example_7_4_code()


class TestConstruction:
    def test_dimensions(self, code_7_4):
        assert code_7_4.num_data_bits == 4
        assert code_7_4.num_parity_bits == 3
        assert code_7_4.codeword_length == 7

    def test_bit_position_ranges(self, code_7_4):
        assert list(code_7_4.data_bit_positions) == [0, 1, 2, 3]
        assert list(code_7_4.parity_bit_positions) == [4, 5, 6]

    def test_parity_check_matrix_matches_equation_1(self, code_7_4):
        expected = GF2Matrix(
            [
                [1, 1, 1, 0, 1, 0, 0],
                [1, 1, 0, 1, 0, 1, 0],
                [1, 0, 1, 1, 0, 0, 1],
            ]
        )
        assert code_7_4.parity_check_matrix == expected

    def test_generator_matches_equation_1(self, code_7_4):
        # Equation 1 gives G^T = [I | P^T]; our generator is the n x k matrix
        # G with c = G d, i.e. rows are [I ; P].
        expected_g_transpose = GF2Matrix(
            [
                [1, 0, 0, 0, 1, 1, 1],
                [0, 1, 0, 0, 1, 1, 0],
                [0, 0, 1, 0, 1, 0, 1],
                [0, 0, 0, 1, 0, 1, 1],
            ]
        )
        assert code_7_4.generator_matrix.T == expected_g_transpose

    def test_from_parity_columns(self):
        code = SystematicLinearCode.from_parity_columns([0b111, 0b011], 3)
        assert code.num_data_bits == 2
        assert code.column_int(0) == 0b111
        assert code.column_int(1) == 0b011

    def test_from_parity_check_matrix_round_trip(self, code_7_4):
        rebuilt = SystematicLinearCode.from_parity_check_matrix(
            code_7_4.parity_check_matrix
        )
        assert rebuilt == code_7_4

    def test_from_parity_check_matrix_rejects_non_standard_form(self):
        matrix = GF2Matrix([[1, 0, 1], [0, 1, 1]])  # trailing block not identity
        with pytest.raises(CodeConstructionError):
            SystematicLinearCode.from_parity_check_matrix(matrix)

    def test_from_parity_check_matrix_rejects_square(self):
        with pytest.raises(CodeConstructionError):
            SystematicLinearCode.from_parity_check_matrix(GF2Matrix.identity(3))

    def test_empty_parity_submatrix_rejected(self):
        with pytest.raises((CodeConstructionError, DimensionError)):
            SystematicLinearCode(GF2Matrix.zeros(0, 0))

    def test_repr(self, code_7_4):
        assert "n=7" in repr(code_7_4)
        assert "k=4" in repr(code_7_4)


class TestEncoding:
    def test_encode_is_systematic(self, code_7_4):
        dataword = GF2Vector([1, 0, 1, 1])
        codeword = code_7_4.encode(dataword)
        assert codeword[0:4] == dataword

    def test_encode_produces_zero_syndrome(self, code_7_4):
        for value in range(16):
            codeword = code_7_4.encode(GF2Vector.from_int(value, 4))
            assert code_7_4.is_codeword(codeword)

    def test_encode_length_mismatch(self, code_7_4):
        with pytest.raises(DimensionError):
            code_7_4.encode(GF2Vector([1, 0, 1]))

    def test_extract_dataword(self, code_7_4):
        dataword = GF2Vector([0, 1, 1, 0])
        assert code_7_4.extract_dataword(code_7_4.encode(dataword)) == dataword

    def test_extract_dataword_length_mismatch(self, code_7_4):
        with pytest.raises(DimensionError):
            code_7_4.extract_dataword(GF2Vector([1, 0, 1]))

    def test_parity_of_example_dataword(self, code_7_4):
        # d = 1000 -> p = first column of P = (1,1,1)
        codeword = code_7_4.encode(GF2Vector([1, 0, 0, 0]))
        assert codeword.to_list() == [1, 0, 0, 0, 1, 1, 1]


class TestSyndromes:
    def test_single_error_syndrome_is_column(self, code_7_4):
        codeword = code_7_4.encode(GF2Vector([1, 1, 0, 0]))
        for position in range(7):
            syndrome = code_7_4.syndrome(codeword.flip(position))
            assert syndrome == code_7_4.column(position)

    def test_syndrome_of_error_positions(self, code_7_4):
        syndrome = code_7_4.syndrome_of_error_positions([0, 5])
        expected = code_7_4.column(0) + code_7_4.column(5)
        assert syndrome == expected

    def test_syndrome_of_error_positions_out_of_range(self, code_7_4):
        with pytest.raises(DimensionError):
            code_7_4.syndrome_of_error_positions([7])

    def test_syndrome_length_mismatch(self, code_7_4):
        with pytest.raises(DimensionError):
            code_7_4.syndrome(GF2Vector([1, 0, 1]))

    def test_syndrome_to_position(self, code_7_4):
        assert code_7_4.syndrome_to_position(GF2Vector([0, 0, 0])) is None
        assert code_7_4.syndrome_to_position(code_7_4.column(3)) == 3
        assert code_7_4.syndrome_to_position(code_7_4.column(6)) == 6

    def test_syndrome_to_position_unmatched(self):
        # A shortened code where some syndromes match no column.
        code = SystematicLinearCode.from_parity_columns([0b0111], 4)
        unmatched = GF2Vector.from_int(0b1111, 4)
        assert code.syndrome_to_position(unmatched) is None


class TestCodeProperties:
    def test_example_code_is_sec(self, code_7_4):
        assert code_7_4.is_single_error_correcting()
        assert code_7_4.minimum_distance() == 3

    def test_duplicate_columns_not_sec(self):
        code = SystematicLinearCode.from_parity_columns([0b011, 0b011], 3)
        assert not code.is_single_error_correcting()
        assert code.minimum_distance() == 2

    def test_zero_column_distance_one(self):
        code = SystematicLinearCode(GF2Matrix([[0, 1], [0, 1], [0, 1]]))
        assert code.minimum_distance() == 1

    def test_codeword_enumeration(self, code_7_4):
        words = code_7_4.codewords()
        assert len(words) == 16
        assert len({w.to_int() for w in words}) == 16

    def test_codeword_enumeration_refuses_large_codes(self):
        code = hamming_code(32)
        with pytest.raises(CodeConstructionError):
            code.codewords()

    def test_minimum_distance_of_single_parity_style_code(self):
        # k=1, one weight-2 column: the only nonzero codeword has weight 3.
        code = SystematicLinearCode.from_parity_columns([0b011], 3)
        assert code.minimum_distance() >= 3

    def test_equality_and_hash(self, code_7_4):
        clone = example_7_4_code()
        assert clone == code_7_4
        assert hash(clone) == hash(code_7_4)
        assert code_7_4 != hamming_code(4)


class TestColumnAccessors:
    def test_column_ints_data_then_parity(self, code_7_4):
        assert code_7_4.parity_column_ints == (0b111, 0b011, 0b101, 0b110)
        assert code_7_4.column_ints[4:] == (0b001, 0b010, 0b100)

    def test_column_matches_column_int(self, code_7_4):
        for position in range(7):
            assert code_7_4.column(position).to_int() == code_7_4.column_int(position)


class TestEncodeDecodeProperty:
    @given(st.integers(min_value=4, max_value=20), st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_encoded_word_has_zero_syndrome(self, num_data_bits, data):
        code = hamming_code(num_data_bits)
        value = data.draw(
            st.integers(min_value=0, max_value=(1 << num_data_bits) - 1)
        )
        dataword = GF2Vector.from_int(value, num_data_bits)
        assert code.is_codeword(code.encode(dataword))

    @given(st.integers(min_value=4, max_value=20), st.data())
    @settings(max_examples=40, deadline=None)
    def test_single_bit_error_syndromes_are_unique(self, num_data_bits, data):
        code = hamming_code(num_data_bits)
        del data
        syndromes = {code.column_int(j) for j in range(code.codeword_length)}
        assert len(syndromes) == code.codeword_length
        assert 0 not in syndromes
