"""Unit and property tests for GF(2) linear-algebra algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError, SingularMatrixError
from repro.gf2 import (
    GF2Matrix,
    GF2Vector,
    gf2_inverse,
    gf2_null_space,
    gf2_rank,
    gf2_rref,
    gf2_solve,
    in_span,
    int_from_vector,
    popcount,
    row_space_equal,
    span,
    support,
    vector_from_int,
)
from repro.gf2.linalg import gf2_solve_affine, random_full_rank_matrix


def random_matrix(rng, rows, cols):
    return GF2Matrix(rng.integers(0, 2, size=(rows, cols)))


class TestBitHelpers:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(1) == 1
        assert popcount(0b1011) == 3

    def test_popcount_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_support(self):
        assert support(0) == ()
        assert support(0b1010) == (1, 3)

    def test_support_negative(self):
        with pytest.raises(ValueError):
            support(-2)

    def test_vector_int_round_trip(self):
        vec = vector_from_int(0b1101, 6)
        assert vec.to_list() == [1, 0, 1, 1, 0, 0]
        assert int_from_vector(vec) == 0b1101


class TestRrefAndRank:
    def test_rref_identity(self):
        rref, pivots = gf2_rref(GF2Matrix.identity(4))
        assert rref == GF2Matrix.identity(4)
        assert pivots == (0, 1, 2, 3)

    def test_rref_dependent_rows(self):
        matrix = GF2Matrix([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        rref, pivots = gf2_rref(matrix)
        assert pivots == (0, 1)
        assert rref.row(2).is_zero()

    def test_rank_zero_matrix(self):
        assert gf2_rank(GF2Matrix.zeros(3, 5)) == 0

    def test_rank_full(self):
        assert gf2_rank(GF2Matrix.identity(5)) == 5

    def test_rank_bounded_by_dimensions(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            rows = int(rng.integers(1, 6))
            cols = int(rng.integers(1, 6))
            matrix = random_matrix(rng, rows, cols)
            assert 0 <= gf2_rank(matrix) <= min(rows, cols)


class TestSolve:
    def test_solve_identity(self):
        rhs = GF2Vector([1, 0, 1])
        assert gf2_solve(GF2Matrix.identity(3), rhs) == rhs

    def test_solve_consistency(self):
        rng = np.random.default_rng(11)
        for _ in range(30):
            rows = int(rng.integers(1, 7))
            cols = int(rng.integers(1, 7))
            matrix = random_matrix(rng, rows, cols)
            x_true = GF2Vector(rng.integers(0, 2, size=cols))
            rhs = matrix @ x_true
            solution = gf2_solve(matrix, rhs)
            assert matrix @ solution == rhs

    def test_solve_inconsistent_raises(self):
        matrix = GF2Matrix([[1, 0], [1, 0]])
        rhs = GF2Vector([1, 0])
        with pytest.raises(SingularMatrixError):
            gf2_solve(matrix, rhs)

    def test_solve_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            gf2_solve(GF2Matrix.identity(2), GF2Vector([1, 0, 1]))

    def test_solve_affine_spans_all_solutions(self):
        matrix = GF2Matrix([[1, 1, 0], [0, 0, 1]])
        rhs = GF2Vector([1, 1])
        particular, basis = gf2_solve_affine(matrix, rhs)
        assert matrix @ particular == rhs
        assert len(basis) == 1
        shifted = particular + basis[0]
        assert matrix @ shifted == rhs


class TestNullSpaceAndInverse:
    def test_null_space_dimension(self):
        matrix = GF2Matrix([[1, 0, 1, 1], [0, 1, 1, 0]])
        basis = gf2_null_space(matrix)
        assert len(basis) == 2
        for vec in basis:
            assert (matrix @ vec).is_zero()

    def test_null_space_of_full_rank_square(self):
        assert gf2_null_space(GF2Matrix.identity(4)) == []

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            size = int(rng.integers(1, 7))
            matrix = random_full_rank_matrix(size, size, rng)
            inverse = gf2_inverse(matrix)
            assert matrix @ inverse == GF2Matrix.identity(size)

    def test_inverse_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            gf2_inverse(GF2Matrix([[1, 1], [1, 1]]))

    def test_inverse_non_square_raises(self):
        with pytest.raises(DimensionError):
            gf2_inverse(GF2Matrix([[1, 0, 1]]))

    def test_random_full_rank_rejects_impossible_shape(self):
        with pytest.raises(DimensionError):
            random_full_rank_matrix(3, 2)


class TestSpan:
    def test_span_of_empty_set(self):
        assert span([]) == []

    def test_span_enumerates_all_combinations(self):
        vectors = [GF2Vector([1, 0, 0]), GF2Vector([0, 1, 0])]
        elements = {v.to_int() for v in span(vectors)}
        assert elements == {0b000, 0b001, 0b010, 0b011}

    def test_span_handles_dependent_vectors(self):
        vectors = [GF2Vector([1, 1]), GF2Vector([1, 1])]
        assert len(span(vectors)) == 2

    def test_span_length_mismatch(self):
        with pytest.raises(DimensionError):
            span([GF2Vector([1, 0]), GF2Vector([1, 0, 1])])

    def test_in_span_positive_and_negative(self):
        basis = [GF2Vector([1, 0, 1]), GF2Vector([0, 1, 1])]
        assert in_span(GF2Vector([1, 1, 0]), basis)
        assert not in_span(GF2Vector([0, 0, 1]), basis)

    def test_in_span_empty_basis(self):
        assert in_span(GF2Vector([0, 0]), [])
        assert not in_span(GF2Vector([1, 0]), [])

    def test_row_space_equal(self):
        first = GF2Matrix([[1, 0, 1], [0, 1, 1]])
        second = GF2Matrix([[1, 1, 0], [0, 1, 1]])
        assert row_space_equal(first, second)
        third = GF2Matrix([[1, 0, 0], [0, 1, 0]])
        assert not row_space_equal(first, third)

    def test_row_space_different_widths(self):
        assert not row_space_equal(GF2Matrix([[1, 0]]), GF2Matrix([[1, 0, 0]]))


@st.composite
def matrix_and_vector(draw):
    rows = draw(st.integers(min_value=1, max_value=6))
    cols = draw(st.integers(min_value=1, max_value=6))
    matrix = draw(
        st.lists(
            st.lists(st.integers(0, 1), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    x_vec = draw(st.lists(st.integers(0, 1), min_size=cols, max_size=cols))
    return GF2Matrix(matrix), GF2Vector(x_vec)


class TestProperties:
    @given(matrix_and_vector())
    @settings(max_examples=60, deadline=None)
    def test_solve_recovers_consistent_rhs(self, pair):
        matrix, x_vec = pair
        rhs = matrix @ x_vec
        solution = gf2_solve(matrix, rhs)
        assert matrix @ solution == rhs

    @given(matrix_and_vector())
    @settings(max_examples=60, deadline=None)
    def test_rank_nullity_theorem(self, pair):
        matrix, _ = pair
        rank = gf2_rank(matrix)
        nullity = len(gf2_null_space(matrix))
        assert rank + nullity == matrix.num_cols

    @given(matrix_and_vector())
    @settings(max_examples=60, deadline=None)
    def test_matrix_vector_product_is_column_combination(self, pair):
        matrix, x_vec = pair
        product = matrix @ x_vec
        accumulator = GF2Vector.zeros(matrix.num_rows)
        for index, bit in enumerate(x_vec):
            if bit:
                accumulator = accumulator + matrix.column(index)
        assert product == accumulator

    @given(st.lists(st.integers(0, 255), min_size=0, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_in_span_agrees_with_enumerated_span(self, values):
        vectors = [GF2Vector.from_int(v, 8) for v in values]
        enumerated = {v.to_int() for v in span(vectors)} if vectors else {None}
        for target_value in range(0, 256, 17):
            target = GF2Vector.from_int(target_value, 8)
            expected = (
                target_value in enumerated if vectors else target.is_zero()
            )
            assert in_span(target, vectors) == expected
