"""Unit, integration, and property tests for the CDCL SAT solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.sat import (
    CNF,
    CDCLSolver,
    encode_at_most_one,
    encode_exactly_one,
    encode_iff,
    encode_implies,
    encode_xor,
    iterate_models,
    solve,
)
from repro.sat.encoders import (
    bits_of_integer,
    encode_conjunction,
    encode_disjunction,
    integer_of_bits,
)


def brute_force_satisfiable(formula: CNF) -> bool:
    """Reference check by exhaustive enumeration (small formulas only)."""
    for bits in itertools.product([False, True], repeat=formula.num_variables):
        if formula.evaluate(list(bits)):
            return True
    return False


def pigeonhole(num_pigeons: int, num_holes: int) -> CNF:
    """The classic pigeonhole principle instance (UNSAT when pigeons > holes)."""
    formula = CNF()
    variables = {
        (pigeon, hole): formula.new_variable()
        for pigeon in range(num_pigeons)
        for hole in range(num_holes)
    }
    for pigeon in range(num_pigeons):
        formula.add_clause([variables[(pigeon, hole)] for hole in range(num_holes)])
    for hole in range(num_holes):
        encode_at_most_one(
            formula, [variables[(pigeon, hole)] for pigeon in range(num_pigeons)]
        )
    return formula


class TestBasicSolving:
    def test_single_unit(self):
        formula = CNF()
        formula.add_unit(1)
        result = solve(formula)
        assert result.satisfiable
        assert result.value(1) is True

    def test_contradictory_units(self):
        formula = CNF()
        formula.add_unit(1)
        formula.add_unit(-1)
        assert not solve(formula).satisfiable

    def test_simple_satisfiable(self):
        formula = CNF()
        formula.add_clauses([[1, 2], [-1, 2], [1, -2]])
        result = solve(formula)
        assert result.satisfiable
        assert formula.evaluate(
            [result.assignment[v] for v in range(1, formula.num_variables + 1)]
        )

    def test_simple_unsatisfiable(self):
        formula = CNF()
        formula.add_clauses([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        assert not solve(formula).satisfiable

    def test_model_satisfies_formula(self):
        formula = CNF()
        formula.add_clauses([[1, -2, 3], [-1, 2], [2, -3], [-2, -3], [1, 3, -4], [4, 2]])
        result = solve(formula)
        assert result.satisfiable
        assignment = [result.assignment[v] for v in range(1, formula.num_variables + 1)]
        assert formula.evaluate(assignment)

    def test_value_on_unsat_raises(self):
        formula = CNF()
        formula.add_unit(1)
        formula.add_unit(-1)
        result = solve(formula)
        with pytest.raises(SolverError):
            result.value(1)

    def test_assumptions(self):
        formula = CNF()
        formula.add_clause([1, 2])
        assert solve(formula, assumptions=[-1]).value(2) is True
        assert not solve(formula, assumptions=[-1, -2]).satisfiable

    def test_statistics_reported(self):
        formula = pigeonhole(4, 3)
        result = solve(formula)
        assert not result.satisfiable
        assert result.conflicts > 0

    def test_conflict_budget(self):
        formula = pigeonhole(7, 6)
        with pytest.raises(SolverError):
            CDCLSolver(formula, max_conflicts=1).solve()


class TestStructuredInstances:
    def test_pigeonhole_unsat(self):
        for pigeons in range(2, 6):
            assert not solve(pigeonhole(pigeons, pigeons - 1)).satisfiable

    def test_pigeonhole_sat_when_holes_sufficient(self):
        result = solve(pigeonhole(4, 4))
        assert result.satisfiable

    def test_graph_coloring(self):
        # A 5-cycle is 3-colourable but not 2-colourable.
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]

        def coloring_formula(num_colors):
            formula = CNF()
            variables = {
                (node, color): formula.new_variable()
                for node in range(5)
                for color in range(num_colors)
            }
            for node in range(5):
                encode_exactly_one(
                    formula, [variables[(node, c)] for c in range(num_colors)]
                )
            for first, second in edges:
                for color in range(num_colors):
                    formula.add_clause(
                        [-variables[(first, color)], -variables[(second, color)]]
                    )
            return formula

        assert not solve(coloring_formula(2)).satisfiable
        assert solve(coloring_formula(3)).satisfiable

    def test_xor_chain_sat_and_unsat(self):
        formula = CNF()
        variables = formula.new_variables(6)
        encode_xor(formula, variables, True)
        result = solve(formula)
        assert result.satisfiable
        assert sum(result.assignment[v] for v in variables) % 2 == 1

        # Adding the opposite parity over the same variables makes it UNSAT.
        encode_xor(formula, variables, False)
        assert not solve(formula).satisfiable

    def test_gf2_system_via_xor(self):
        # x1 ^ x2 = 1, x2 ^ x3 = 0, x1 ^ x3 = 1  => consistent
        formula = CNF()
        x1, x2, x3 = formula.new_variables(3)
        encode_xor(formula, [x1, x2], True)
        encode_xor(formula, [x2, x3], False)
        encode_xor(formula, [x1, x3], True)
        result = solve(formula)
        assert result.satisfiable
        assert result.assignment[x1] != result.assignment[x2]
        assert result.assignment[x2] == result.assignment[x3]


class TestModelEnumeration:
    def test_enumerate_all_models(self):
        formula = CNF()
        formula.add_clause([1, 2])
        models = list(iterate_models(formula))
        assert len(models) == 3
        assert all(model[1] or model[2] for model in models)

    def test_enumeration_respects_limit(self):
        formula = CNF()
        formula.new_variables(4)
        formula.add_clause([1, -1])
        assert len(list(iterate_models(formula, limit=5))) == 5

    def test_enumeration_over_projection(self):
        formula = CNF()
        x1, x2, x3 = formula.new_variables(3)
        formula.add_clause([x1, x2])
        models = list(iterate_models(formula, over_variables=[x1, x2]))
        assert len(models) == 3
        assert all(set(model) == {x1, x2} for model in models)
        del x3

    def test_enumeration_of_unsat_formula_is_empty(self):
        formula = CNF()
        formula.add_unit(1)
        formula.add_unit(-1)
        assert list(iterate_models(formula)) == []


class TestEncoders:
    def test_exactly_one(self):
        formula = CNF()
        variables = formula.new_variables(4)
        encode_exactly_one(formula, variables)
        for model in iterate_models(formula, over_variables=variables):
            assert sum(model[v] for v in variables) == 1

    def test_exactly_one_empty_rejected(self):
        with pytest.raises(SolverError):
            encode_exactly_one(CNF(), [])

    def test_at_most_one_allows_zero(self):
        formula = CNF()
        variables = formula.new_variables(3)
        encode_at_most_one(formula, variables)
        models = list(iterate_models(formula, over_variables=variables))
        assert len(models) == 4  # none true, or exactly one of three

    def test_implies(self):
        formula = CNF()
        a, b, c = formula.new_variables(3)
        encode_implies(formula, a, [b, c])
        formula.add_unit(a)
        result = solve(formula)
        assert result.assignment[b] and result.assignment[c]

    def test_iff(self):
        formula = CNF()
        a, b = formula.new_variables(2)
        encode_iff(formula, a, b)
        for model in iterate_models(formula, over_variables=[a, b]):
            assert model[a] == model[b]

    def test_conjunction_gate(self):
        formula = CNF()
        a, b, out = formula.new_variables(3)
        encode_conjunction(formula, out, [a, b])
        for model in iterate_models(formula, over_variables=[a, b, out]):
            assert model[out] == (model[a] and model[b])

    def test_disjunction_gate(self):
        formula = CNF()
        a, b, out = formula.new_variables(3)
        encode_disjunction(formula, out, [a, b])
        for model in iterate_models(formula, over_variables=[a, b, out]):
            assert model[out] == (model[a] or model[b])

    def test_empty_xor_with_odd_parity_rejected(self):
        with pytest.raises(SolverError):
            encode_xor(CNF(), [], True)

    def test_empty_xor_with_even_parity_is_noop(self):
        formula = CNF()
        encode_xor(formula, [], False)
        assert formula.num_clauses == 0

    def test_bit_helpers(self):
        formula = CNF()
        variables = formula.new_variables(4)
        model = dict(zip(variables, bits_of_integer(0b1010, 4)))
        assert integer_of_bits(model, variables) == 0b1010
        with pytest.raises(SolverError):
            bits_of_integer(16, 4)


class TestRandomInstances:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_brute_force_on_random_3sat(self, seed):
        rng = np.random.default_rng(seed)
        num_variables = int(rng.integers(3, 9))
        num_clauses = int(rng.integers(1, 4 * num_variables))
        formula = CNF(num_variables)
        for _ in range(num_clauses):
            width = int(rng.integers(1, 4))
            variables = rng.choice(num_variables, size=width, replace=False) + 1
            signs = rng.integers(0, 2, size=width) * 2 - 1
            formula.add_clause(list(variables * signs))
        assert solve(formula).satisfiable == brute_force_satisfiable(formula)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_returned_models_always_satisfy(self, seed):
        rng = np.random.default_rng(seed)
        num_variables = int(rng.integers(3, 12))
        formula = CNF(num_variables)
        for _ in range(3 * num_variables):
            width = int(rng.integers(2, 4))
            variables = rng.choice(num_variables, size=width, replace=False) + 1
            signs = rng.integers(0, 2, size=width) * 2 - 1
            formula.add_clause(list(variables * signs))
        result = solve(formula)
        if result.satisfiable:
            assignment = [
                result.assignment[v] for v in range(1, formula.num_variables + 1)
            ]
            assert formula.evaluate(assignment)
