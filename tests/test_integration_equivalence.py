"""Integration/property tests for equivalence invariants across modules.

BEER can only recover an ECC function up to a relabelling of its parity bits
(paper Section 4.2.1).  These tests pin down the corresponding invariants:
row-permuted codes are externally indistinguishable (same miscorrection
profiles, same post-correction behaviour on data bits), and the solver's
output respects that equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import GF2Vector
from repro.ecc import SyndromeDecoder, SystematicLinearCode, codes_equivalent, random_hamming_code
from repro.core import (
    BeerSolver,
    charged_patterns,
    expected_miscorrection_profile,
    miscorrections_possible,
    one_charged_patterns,
)


def permute_parity_rows(code: SystematicLinearCode, permutation):
    """Return the equivalent code with parity rows relabelled by ``permutation``."""
    new_columns = []
    for column in code.parity_column_ints:
        value = 0
        for source_row, target_row in enumerate(permutation):
            if (column >> source_row) & 1:
                value |= 1 << target_row
        new_columns.append(value)
    return SystematicLinearCode.from_parity_columns(new_columns, code.num_parity_bits)


class TestProfileEquivalenceInvariance:
    @given(st.integers(min_value=4, max_value=12), st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_row_permutations_do_not_change_profiles(self, num_data_bits, seed):
        rng = np.random.default_rng(seed)
        code = random_hamming_code(num_data_bits, rng=rng)
        permutation = list(rng.permutation(code.num_parity_bits))
        permuted = permute_parity_rows(code, permutation)
        patterns = one_charged_patterns(num_data_bits)
        assert expected_miscorrection_profile(code, patterns) == (
            expected_miscorrection_profile(permuted, patterns)
        )

    def test_equivalent_codes_have_identical_data_bit_behaviour(self):
        # Any error pattern restricted to data bits produces the same
        # post-correction dataword under equivalent codes.
        rng = np.random.default_rng(5)
        code = random_hamming_code(8, rng=rng)
        permuted = permute_parity_rows(code, list(rng.permutation(code.num_parity_bits)))
        decoder_a = SyndromeDecoder(code)
        decoder_b = SyndromeDecoder(permuted)
        for _trial in range(50):
            dataword = GF2Vector(rng.integers(0, 2, size=8))
            error_bits = rng.choice(8, size=2, replace=False)
            received_a = code.encode(dataword)
            received_b = permuted.encode(dataword)
            for bit in error_bits:
                received_a = received_a.flip(int(bit))
                received_b = received_b.flip(int(bit))
            assert decoder_a.decode_dataword(received_a) == decoder_b.decode_dataword(
                received_b
            )

    def test_inequivalent_codes_differ_on_some_profile(self):
        # Two codes the solver distinguishes must differ in at least one
        # {1,2}-CHARGED profile entry.
        first = random_hamming_code(8, rng=np.random.default_rng(1))
        second = random_hamming_code(8, rng=np.random.default_rng(2))
        if codes_equivalent(first, second):
            pytest.skip("random draw produced equivalent codes")
        patterns = list(charged_patterns(8, [1, 2]))
        assert expected_miscorrection_profile(first, patterns) != (
            expected_miscorrection_profile(second, patterns)
        )


class TestSolverEquivalenceBehaviour:
    @given(st.integers(min_value=4, max_value=10), st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_solver_output_is_invariant_under_profile_source_permutation(
        self, num_data_bits, seed
    ):
        rng = np.random.default_rng(seed)
        code = random_hamming_code(num_data_bits, rng=rng)
        permuted = permute_parity_rows(code, list(rng.permutation(code.num_parity_bits)))
        patterns = list(charged_patterns(num_data_bits, [1, 2]))
        solution_original = BeerSolver(num_data_bits).solve(
            expected_miscorrection_profile(code, patterns)
        )
        solution_permuted = BeerSolver(num_data_bits).solve(
            expected_miscorrection_profile(permuted, patterns)
        )
        assert solution_original.num_solutions == solution_permuted.num_solutions == 1
        assert codes_equivalent(solution_original.code, solution_permuted.code)

    def test_miscorrection_possibility_is_charge_domain_symmetric(self):
        # The 1-CHARGED condition depends only on column supports, so applying
        # it to all patterns of a full-length code marks every data bit whose
        # column is dominated by another as susceptible somewhere.
        code = random_hamming_code(11, rng=np.random.default_rng(3))
        susceptible = set()
        for pattern in one_charged_patterns(11):
            susceptible |= set(miscorrections_possible(code, pattern))
        columns = code.parity_column_ints
        expected = set()
        for target, column in enumerate(columns):
            for other, other_column in enumerate(columns):
                if other != target and (column & ~other_column) == 0:
                    expected.add(target)
                    break
        assert susceptible == expected

    def test_exhaustive_small_space_enumeration_matches_solver(self):
        # For a tiny code the solver's solution set must equal a brute-force
        # scan of the entire design space.
        from repro.ecc.codespace import enumerate_sec_codes, canonical_form

        code = SystematicLinearCode.from_parity_columns([0b011, 0b110], 3)
        patterns = list(charged_patterns(2, [1, 2]))
        profile = expected_miscorrection_profile(code, patterns)
        brute_force = {
            canonical_form(candidate)
            for candidate in enumerate_sec_codes(2, 3)
            if expected_miscorrection_profile(candidate, patterns) == profile
        }
        solution = BeerSolver(2, 3).solve(profile)
        solver_set = {canonical_form(candidate) for candidate in solution.codes}
        assert solver_set == brute_force
