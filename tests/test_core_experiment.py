"""End-to-end tests for the BEER experimental campaign on simulated chips."""

import numpy as np
import pytest

from repro.exceptions import ChipConfigurationError
from repro.dram import (
    CellType,
    CellTypeLayout,
    ChipGeometry,
    DataRetentionModel,
    SimulatedDramChip,
    TransientFaultModel,
    VENDOR_A,
    VENDOR_B,
    VENDOR_C,
)
from repro.dram.retention import RetentionCalibration
from repro.ecc import codes_equivalent, random_hamming_code
from repro.core import BeerExperiment, BeerSolver, ExperimentConfig, expected_miscorrection_profile, charged_patterns


#: Retention model that fails frequently at second-scale windows so campaigns
#: on small simulated chips still observe every possible miscorrection.
FAST_RETENTION = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))

#: Campaign settings tuned for the small test chips: short windows, several
#: rounds so every pattern samples many different error combinations.
TEST_CONFIG = ExperimentConfig(
    pattern_weights=(1, 2),
    refresh_windows_s=(20.0, 40.0, 60.0),
    rounds_per_window=8,
    threshold=0.0,
    discover_cell_encoding=False,
)


def make_chip(num_data_bits=8, seed=0, vendor=None, **kwargs):
    if vendor is not None:
        return vendor.make_chip(
            num_data_bits=num_data_bits,
            geometry=ChipGeometry(num_rows=32, words_per_row=8),
            seed=seed,
            retention_model=FAST_RETENTION,
            **kwargs,
        )
    code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
    return SimulatedDramChip(
        code,
        ChipGeometry(num_rows=32, words_per_row=8),
        retention_model=FAST_RETENTION,
        seed=seed,
        **kwargs,
    )


class TestCampaignMechanics:
    def test_counts_cover_every_pattern(self):
        chip = make_chip()
        experiment = BeerExperiment(chip, TEST_CONFIG)
        counts = experiment.measure_counts()
        expected_patterns = 8 + 28  # 1-CHARGED + 2-CHARGED for k=8
        assert len(counts.patterns) == expected_patterns
        total_words = sum(counts.words_observed(p) for p in counts.patterns)
        windows = len(TEST_CONFIG.refresh_windows_s)
        assert total_words == chip.num_words * windows * TEST_CONFIG.rounds_per_window

    def test_profile_never_claims_charged_bits(self):
        chip = make_chip(seed=1)
        result = BeerExperiment(chip, TEST_CONFIG).run(solve=False)
        for pattern in result.profile.patterns:
            assert not (result.profile.miscorrections(pattern) & pattern.charged_bits)

    def test_solve_disabled_returns_no_solution(self):
        chip = make_chip(seed=2)
        result = BeerExperiment(chip, TEST_CONFIG).run(solve=False)
        assert result.solution is None
        with pytest.raises(ChipConfigurationError):
            _ = result.recovered_code

    def test_requires_at_least_two_data_bits(self):
        code = random_hamming_code(1, num_parity_bits=3, rng=np.random.default_rng(0))
        chip = SimulatedDramChip(code, ChipGeometry(2, 2))
        with pytest.raises(ChipConfigurationError):
            BeerExperiment(chip)

    def test_all_anti_cell_chip_rejected(self):
        chip = make_chip(cell_layout=CellTypeLayout.uniform(CellType.ANTI_CELL), seed=3)
        experiment = BeerExperiment(chip, TEST_CONFIG)
        cell_types = {row: CellType.ANTI_CELL for row in range(chip.geometry.num_rows)}
        with pytest.raises(ChipConfigurationError):
            experiment.measure_counts(cell_types)


class TestEndToEndRecovery:
    def test_campaign_recovers_the_on_die_ecc_function(self):
        chip = make_chip(num_data_bits=8, seed=4)
        result = BeerExperiment(chip, TEST_CONFIG).run(solve=True)
        assert result.solution is not None
        assert result.solution.unique
        assert codes_equivalent(result.recovered_code, chip.code)

    def test_measured_profile_matches_analytic_profile(self):
        chip = make_chip(num_data_bits=8, seed=5)
        result = BeerExperiment(chip, TEST_CONFIG).run(solve=False)
        analytic = expected_miscorrection_profile(
            chip.code, list(charged_patterns(8, [1, 2]))
        )
        measured = result.profile
        # Every measured miscorrection must be analytically possible; with
        # enough rounds the measured profile matches the analytic one exactly.
        for pattern in measured.patterns:
            assert measured.miscorrections(pattern) <= analytic.miscorrections(pattern)
        matches = sum(
            1
            for pattern in measured.patterns
            if measured.miscorrections(pattern) == analytic.miscorrections(pattern)
        )
        assert matches >= 0.9 * len(measured.patterns)

    def test_campaign_tolerates_transient_noise_with_threshold(self):
        chip = make_chip(
            num_data_bits=8,
            seed=6,
            transient_faults=TransientFaultModel(probability_per_bit=2e-4),
        )
        # Real miscorrection probabilities sit above ~0.02 per word while the
        # transient-noise artefacts stay below ~0.006, so a 0.01 threshold
        # separates them cleanly (the reproduction of Figure 4's filter).
        noisy_config = ExperimentConfig(
            pattern_weights=(1, 2),
            refresh_windows_s=(30.0, 45.0, 60.0),
            rounds_per_window=16,
            threshold=0.01,
            discover_cell_encoding=False,
        )
        result = BeerExperiment(chip, noisy_config).run(solve=True)
        assert result.solution is not None
        assert any(
            codes_equivalent(candidate, chip.code) for candidate in result.solution.codes
        )

    def test_vendor_c_chip_with_mixed_cell_types(self):
        chip = make_chip(num_data_bits=8, seed=7, vendor=VENDOR_C)
        config = ExperimentConfig(
            pattern_weights=(1, 2),
            refresh_windows_s=(20.0, 40.0, 60.0),
            rounds_per_window=8,
            threshold=0.0,
            discover_cell_encoding=True,
            discovery_pause_s=60.0,
        )
        result = BeerExperiment(chip, config).run(solve=True)
        assert CellType.ANTI_CELL in result.cell_types.values()
        assert result.solution.unique
        assert codes_equivalent(result.recovered_code, chip.code)

    def test_different_vendors_yield_different_profiles(self):
        profiles = {}
        for vendor in (VENDOR_A, VENDOR_B):
            chip = make_chip(num_data_bits=8, seed=8, vendor=vendor)
            result = BeerExperiment(chip, TEST_CONFIG).run(solve=False)
            profiles[vendor.name] = result.profile
        assert profiles["A"] != profiles["B"]

    def test_chips_of_same_vendor_yield_same_recovered_function(self):
        codes = []
        for seed in (10, 11):
            chip = make_chip(num_data_bits=8, seed=seed, vendor=VENDOR_B)
            result = BeerExperiment(chip, TEST_CONFIG).run(solve=True)
            codes.append(result.recovered_code)
        assert codes_equivalent(codes[0], codes[1])


class TestMonteCarloCampaign:
    """The chunked / multiprocessing Monte-Carlo campaign runner."""

    def _campaign(self, **kwargs):
        from repro.core import MonteCarloCampaign

        code = random_hamming_code(16, rng=np.random.default_rng(0))
        return code, MonteCarloCampaign(code, **kwargs)

    def test_validation(self):
        from repro.core import MonteCarloCampaign

        code = random_hamming_code(8, rng=np.random.default_rng(0))
        with pytest.raises(ChipConfigurationError):
            MonteCarloCampaign(code, chunk_size=0)
        with pytest.raises(ChipConfigurationError):
            MonteCarloCampaign(code, processes=0)
        with pytest.raises(ValueError):
            MonteCarloCampaign(code, backend="gpu")
        campaign = MonteCarloCampaign(code)
        from repro.einsim import UniformRandomInjector

        with pytest.raises(ChipConfigurationError):
            campaign.simulate_many([[1] * 8], UniformRandomInjector(0.1), 0)

    def test_chunked_totals(self):
        from repro.einsim import UniformRandomInjector

        code, campaign = self._campaign(chunk_size=700, base_seed=3)
        result = campaign.simulate([1] * 16, UniformRandomInjector(0.01), 2500)
        assert result.num_words == 2500
        assert result.dataword == [1] * 16
        assert result.pre_correction_error_counts.sum() > 0

    def test_processes_do_not_change_results(self):
        from repro.einsim import UniformRandomInjector

        injector = UniformRandomInjector(0.02)
        code, serial = self._campaign(chunk_size=500, processes=1, base_seed=5)
        _, parallel = self._campaign(chunk_size=500, processes=2, base_seed=5)
        first = serial.simulate([1] * 16, injector, 2000)
        second = parallel.simulate([1] * 16, injector, 2000)
        assert first.num_words == second.num_words
        assert np.array_equal(
            first.post_correction_error_counts, second.post_correction_error_counts
        )
        assert np.array_equal(
            first.pre_correction_error_counts, second.pre_correction_error_counts
        )
        assert first.miscorrection_positions == second.miscorrection_positions

    def test_backends_do_not_change_results(self):
        from repro.einsim import DataRetentionInjector

        injector = DataRetentionInjector(0.05)
        code, reference = self._campaign(chunk_size=512, backend="reference", base_seed=9)
        _, packed = self._campaign(chunk_size=512, backend="packed", base_seed=9)
        first = reference.simulate([1] * 16, injector, 3000)
        second = packed.simulate([1] * 16, injector, 3000)
        assert np.array_equal(
            first.post_correction_error_counts, second.post_correction_error_counts
        )
        assert first.uncorrectable_words == second.uncorrectable_words

    def test_simulate_many_matches_individual_runs(self):
        from repro.einsim import UniformRandomInjector

        injector = UniformRandomInjector(0.02)
        code, campaign = self._campaign(chunk_size=400, base_seed=11)
        batch = campaign.simulate_many([[0] * 16, [1] * 16], injector, 900)
        assert len(batch) == 2
        assert batch[0].dataword == [0] * 16
        assert batch[1].dataword == [1] * 16
        assert all(result.num_words == 900 for result in batch)
        # Batch composition must not change any dataword's result: each entry
        # equals the corresponding standalone simulate() run bit for bit.
        for dataword, batched in zip([[0] * 16, [1] * 16], batch):
            alone = campaign.simulate(dataword, injector, 900)
            assert np.array_equal(
                alone.post_correction_error_counts,
                batched.post_correction_error_counts,
            )
            assert np.array_equal(
                alone.pre_correction_error_counts,
                batched.pre_correction_error_counts,
            )
            assert alone.miscorrected_words == batched.miscorrected_words
            assert alone.uncorrectable_words == batched.uncorrectable_words
            assert alone.miscorrection_positions == batched.miscorrection_positions

    def test_campaign_profile_recovers_code(self):
        from repro.core import MonteCarloCampaign
        from repro.ecc.hamming import min_parity_bits

        code = random_hamming_code(8, rng=np.random.default_rng(21))
        campaign = MonteCarloCampaign(code, chunk_size=1024, backend="packed", base_seed=1)
        patterns = list(charged_patterns(8, [1, 2]))
        profile = campaign.miscorrection_profile(patterns, 0.5, 4000)
        assert profile == expected_miscorrection_profile(code, patterns)
        solution = BeerSolver(8, min_parity_bits(8)).solve(profile)
        assert solution.unique
        assert codes_equivalent(solution.code, code)
