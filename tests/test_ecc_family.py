"""Unit tests for the pluggable code-family registry (repro.ecc.family)."""

import numpy as np
import pytest

from repro.exceptions import CodeConstructionError
from repro.gf2 import GF2Vector, popcount
from repro.ecc import (
    FAMILY_NAMES,
    ColumnConstraints,
    SyndromeDecoder,
    all_families,
    family_names,
    get_family,
    hamming_code,
    random_hamming_code,
    register_family,
)
from repro.ecc.family import SecHammingFamily, RepetitionFamily


class TestRegistry:
    def test_builtin_families_registered(self):
        assert FAMILY_NAMES == (
            "sec-hamming",
            "secded-extended-hamming",
            "parity-detect",
            "repetition",
        )
        assert family_names() == list(FAMILY_NAMES)
        assert [f.name for f in all_families()] == list(FAMILY_NAMES)

    def test_unknown_family_raises_with_known_names(self):
        with pytest.raises(CodeConstructionError, match="sec-hamming"):
            get_family("turbo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CodeConstructionError, match="already registered"):
            register_family(SecHammingFamily())

    def test_unnamed_family_rejected(self):
        class Anonymous(SecHammingFamily):
            name = ""

        with pytest.raises(CodeConstructionError, match="non-empty name"):
            register_family(Anonymous())


class TestSecHammingFamily:
    def test_matches_historical_constructors(self):
        family = get_family("sec-hamming")
        for k in (4, 8, 16):
            assert family.construct(k) == hamming_code(k)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        assert family.random(8, rng=rng_a) == random_hamming_code(8, rng=rng_b)

    def test_tags_and_policy(self):
        code = get_family("sec-hamming").construct(8)
        assert code.family_name == "sec-hamming"
        assert not code.detect_only
        assert code.is_single_error_correcting()

    def test_constraints(self):
        constraints = get_family("sec-hamming").column_constraints()
        assert constraints == ColumnConstraints(min_weight=2, odd_weight=False)
        # 2**w - w - 1 legal subset values of a weight-w support.
        assert get_family("sec-hamming").legal_subset_count(4) == 16 - 4 - 1


class TestSecDedFamily:
    def test_columns_are_odd_weight_at_least_three(self):
        family = get_family("secded-extended-hamming")
        for r in (4, 5, 6):
            for value in family.candidate_columns(r):
                assert popcount(value) >= 3
                assert popcount(value) % 2 == 1

    def test_minimum_distance_is_four(self):
        family = get_family("secded-extended-hamming")
        for k, seed in [(4, 0), (8, 1), (11, 2)]:
            code = family.random(k, rng=np.random.default_rng(seed))
            assert code.minimum_distance() == 4
            assert code.is_single_error_correcting()
            assert code.family_name == "secded-extended-hamming"
            assert not code.detect_only

    def test_min_parity_bits(self):
        family = get_family("secded-extended-hamming")
        # r=4: odd-weight >=3 values in 4 bits: weight 3 only -> 4 columns.
        assert family.num_candidate_columns(4) == 4
        assert family.min_parity_bits(4) == 4
        assert family.min_parity_bits(5) == 5
        # SEC-DED needs more parity bits than SEC for the same k.
        assert family.min_parity_bits(8) >= get_family(
            "sec-hamming"
        ).min_parity_bits(8)

    def test_design_space_smaller_than_sec(self):
        secded = get_family("secded-extended-hamming")
        sec = get_family("sec-hamming")
        for r in (5, 6, 7):
            assert secded.num_candidate_columns(r) < sec.num_candidate_columns(r)

    def test_double_errors_always_detected_never_miscorrected(self):
        import itertools

        from repro.ecc import DecodeOutcome, classify_decode

        code = get_family("secded-extended-hamming").random(
            6, rng=np.random.default_rng(3)
        )
        codeword = code.encode(GF2Vector([1, 0, 1, 1, 0, 1]))
        for a, b in itertools.combinations(range(code.codeword_length), 2):
            outcome = classify_decode(code, codeword, codeword.flip(a).flip(b))
            assert outcome == DecodeOutcome.DETECTED_UNCORRECTABLE

    def test_explicit_columns_validated(self):
        family = get_family("secded-extended-hamming")
        with pytest.raises(CodeConstructionError, match="design space"):
            family.construct(2, 4, columns=[3, 7])  # weight 2 is illegal


class TestParityDetectFamily:
    def test_structure(self):
        code = get_family("parity-detect").construct(8)
        assert code.num_parity_bits == 1
        assert code.codeword_length == 9
        assert code.detect_only
        assert list(code.parity_column_ints) == [1] * 8
        # The parity bit is the XOR of the data bits.
        word = GF2Vector([1, 1, 0, 1, 0, 0, 1, 0])
        assert code.encode(word)[8] == sum(word.to_list()) % 2

    def test_decoder_never_corrects(self):
        code = get_family("parity-detect").construct(5)
        decoder = SyndromeDecoder(code)
        codeword = code.encode(GF2Vector([1, 0, 1, 0, 1]))
        for position in range(code.codeword_length):
            result = decoder.decode(codeword.flip(position))
            assert result.corrected_position is None
            assert result.detected_uncorrectable

    def test_no_beer_design_space(self):
        family = get_family("parity-detect")
        assert not family.supports_beer
        with pytest.raises(CodeConstructionError, match="no searchable"):
            family.candidate_columns(1)

    def test_rejects_explicit_columns_and_wrong_r(self):
        family = get_family("parity-detect")
        with pytest.raises(CodeConstructionError):
            family.construct(4, columns=[1, 1, 1, 1])
        with pytest.raises(CodeConstructionError):
            family.construct(4, num_parity_bits=2)

    def test_membership(self):
        family = get_family("parity-detect")
        assert family.is_member(family.construct(6))
        assert not family.is_member(hamming_code(6))


class TestRepetitionFamily:
    def test_three_x_codeword_is_data_repeated(self):
        code = get_family("repetition").construct(4)
        data = GF2Vector([1, 0, 1, 1])
        assert code.encode(data).to_list() == data.to_list() * 3

    def test_three_x_corrects_every_single_error(self):
        code = get_family("repetition").construct(4)
        assert not code.detect_only
        assert code.is_single_error_correcting()
        decoder = SyndromeDecoder(code)
        codeword = code.encode(GF2Vector([1, 0, 0, 1]))
        for position in range(code.codeword_length):
            result = decoder.decode(codeword.flip(position))
            assert result.corrected_position == position
            assert result.dataword == codeword[0:4]

    def test_duplication_is_detect_only(self):
        code = get_family("repetition").construct(4, num_parity_bits=4)
        assert code.detect_only
        assert code.minimum_distance() == 2
        decoder = SyndromeDecoder(code)
        codeword = code.encode(GF2Vector([1, 1, 0, 0]))
        result = decoder.decode(codeword.flip(0))
        assert result.corrected_position is None
        assert result.detected_uncorrectable

    def test_five_x_construction(self):
        family = RepetitionFamily(repetitions=5)
        code = family.construct(3)
        assert code.codeword_length == 15
        assert code.encode(GF2Vector([1, 0, 1])).to_list() == [1, 0, 1] * 5

    def test_invalid_dimensions_rejected(self):
        family = get_family("repetition")
        with pytest.raises(CodeConstructionError):
            family.construct(4, num_parity_bits=6)  # not a multiple of k
        with pytest.raises(CodeConstructionError):
            RepetitionFamily(repetitions=1)

    def test_membership(self):
        family = get_family("repetition")
        assert family.is_member(family.construct(4))
        assert not family.is_member(hamming_code(4))


class TestDecodeActionTable:
    def test_sec_table_matches_position_table(self):
        code = hamming_code(8)
        actions = code.decode_action_table()
        positions = code.syndrome_position_table()
        assert actions[0] == code.ACTION_NONE
        for syndrome in range(1, 1 << code.num_parity_bits):
            if positions[syndrome] >= 0:
                assert actions[syndrome] == positions[syndrome]
            else:
                assert actions[syndrome] == code.ACTION_DETECT

    def test_detect_only_table_flags_every_nonzero_syndrome(self):
        code = get_family("parity-detect").construct(4)
        actions = code.decode_action_table()
        assert actions[0] == code.ACTION_NONE
        assert actions[1] == code.ACTION_DETECT

    def test_shortened_sec_code_has_detect_entries(self):
        code = hamming_code(4, num_parity_bits=4)  # shortened: unused syndromes
        actions = code.decode_action_table()
        assert (actions == code.ACTION_DETECT).sum() > 0


class TestTableSizeGuards:
    """Families whose r can explode must fail loudly, not OOM (regression)."""

    def test_repetition_beyond_table_limit_rejected_at_construction(self):
        family = get_family("repetition")
        # k=16 at 3x needs r=32: a 2**32-entry decode table. Must refuse.
        with pytest.raises(CodeConstructionError, match="table-decode limit"):
            family.construct(16)
        # The largest representable width still works.
        code = family.construct(12)  # r=24 == MAX_TABLE_PARITY_BITS
        assert code.num_parity_bits == 24

    def test_oversized_code_table_raises_clearly(self):
        from repro.ecc import SystematicLinearCode

        columns = [(1 << 25) - 1]
        code = SystematicLinearCode.from_parity_columns(columns, 25)
        with pytest.raises(CodeConstructionError, match="syndrome table"):
            code.decode_action_table()
        with pytest.raises(CodeConstructionError, match="syndrome table"):
            code.syndrome_position_table()
