"""Tests for the beer-tool command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.ecc import codes_equivalent, random_hamming_code, SystematicLinearCode
from repro.core import charged_patterns, expected_miscorrection_profile


@pytest.fixture
def profile_file(tmp_path):
    code = random_hamming_code(6, rng=np.random.default_rng(5))
    profile = expected_miscorrection_profile(
        code, list(charged_patterns(6, [1, 2]))
    )
    path = tmp_path / "profile.json"
    path.write_text(json.dumps(profile.to_dict()))
    return path, code


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_arguments(self):
        args = build_parser().parse_args(
            ["solve", "--profile", "p.json", "--backend", "sat", "--max-solutions", "3"]
        )
        assert args.command == "solve"
        assert args.backend == "sat"
        assert args.max_solutions == 3

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--profile", "p.json", "--backend", "z3"])


class TestSolveCommand:
    def test_solve_recovers_function(self, profile_file, tmp_path, capsys):
        path, code = profile_file
        output = tmp_path / "solution.json"
        exit_code = main(["solve", "--profile", str(path), "--output", str(output)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "candidate ECC functions found: 1" in captured
        payload = json.loads(output.read_text())
        recovered = SystematicLinearCode.from_parity_columns(
            payload["candidates"][0], payload["num_parity_bits"]
        )
        assert codes_equivalent(recovered, code)

    def test_solve_with_sat_backend(self, profile_file, capsys):
        path, code = profile_file
        exit_code = main(["solve", "--profile", str(path), "--backend", "sat"])
        assert exit_code == 0
        assert "sat" in capsys.readouterr().out

    def test_solve_reports_failure_when_profile_inconsistent(self, tmp_path, capsys):
        # A self-contradictory profile: both containments => equal columns.
        payload = {
            "num_data_bits": 2,
            "entries": [
                {"charged_bits": [0], "miscorrections": [1]},
                {"charged_bits": [1], "miscorrections": [0]},
            ],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        exit_code = main(["solve", "--profile", str(path), "--parity-bits", "3"])
        assert exit_code == 1
        assert "found: 0" in capsys.readouterr().out


class TestVerifyCommand:
    def test_verify_match(self, profile_file, capsys):
        path, code = profile_file
        columns = ",".join(str(c) for c in code.parity_column_ints)
        exit_code = main(["verify", "--profile", str(path), "--columns", columns])
        assert exit_code == 0
        assert "MATCH" in capsys.readouterr().out

    def test_verify_mismatch(self, profile_file, capsys):
        path, code = profile_file
        wrong = random_hamming_code(6, rng=np.random.default_rng(99))
        if codes_equivalent(wrong, code):
            pytest.skip("random code happened to match")
        columns = ",".join(str(c) for c in wrong.parity_column_ints)
        exit_code = main(["verify", "--profile", str(path), "--columns", columns])
        assert exit_code == 1
        assert "MISMATCH" in capsys.readouterr().out


class TestSimulateAndBeepCommands:
    def test_simulate_profile_roundtrip(self, tmp_path, capsys):
        output = tmp_path / "sim_profile.json"
        exit_code = main(
            [
                "simulate-profile",
                "--vendor", "B",
                "--data-bits", "8",
                "--rounds", "6",
                "--output", str(output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert payload["num_data_bits"] == 8
        assert len(payload["entries"]) == 8 + 28
        # The exported profile is solvable by the solve subcommand.
        solve_exit = main(["solve", "--profile", str(output)])
        assert solve_exit == 0

    def test_beep_identifies_deterministic_errors(self, capsys):
        exit_code = main(
            ["beep", "--data-bits", "16", "--error-positions", "2,9", "--passes", "2"]
        )
        captured = capsys.readouterr().out
        assert "identified weak cells" in captured
        assert exit_code == 0

    def test_beep_reports_partial_identification(self, capsys):
        # With failure probability 0 nothing can ever be identified.
        exit_code = main(
            [
                "beep",
                "--data-bits", "16",
                "--error-positions", "2,9",
                "--probability", "0.0",
            ]
        )
        assert exit_code == 1
        assert "identified weak cells: []" in capsys.readouterr().out


class TestEinsimCommand:
    def test_parser_defaults_and_backend_choices(self):
        args = build_parser().parse_args(["einsim"])
        assert args.command == "einsim"
        assert args.backend == "reference"
        args = build_parser().parse_args(["einsim", "--backend", "packed"])
        assert args.backend == "packed"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["einsim", "--backend", "gpu"])

    def test_einsim_writes_figure_data(self, tmp_path, capsys):
        output = tmp_path / "einsim.json"
        exit_code = main(
            [
                "einsim",
                "--data-bits", "8",
                "--num-words", "500",
                "--ber", "0.01",
                "--backend", "packed",
                "--chunk-size", "128",
                "--output", str(output),
            ]
        )
        assert exit_code == 0
        assert "packed backend" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["num_words"] == 500
        assert payload["backend"] == "packed"
        assert len(payload["post_correction_error_counts"]) == 8
        assert len(payload["pre_correction_error_counts"]) == payload["codeword_length"]

    def test_backends_emit_identical_figure_data(self, tmp_path):
        """Smoke test: reference and packed produce identical figure data."""
        payloads = {}
        for backend in ("reference", "packed"):
            output = tmp_path / f"einsim_{backend}.json"
            exit_code = main(
                [
                    "einsim",
                    "--data-bits", "8",
                    "--num-words", "400",
                    "--ber", "0.02",
                    "--seed", "3",
                    "--backend", backend,
                    "--output", str(output),
                ]
            )
            assert exit_code == 0
            payloads[backend] = json.loads(output.read_text())
            payloads[backend].pop("backend")
        assert payloads["reference"] == payloads["packed"]


class TestJsonOutput:
    """--json turns each subcommand's stdout into one machine-readable document."""

    def test_solve_json(self, profile_file, capsys):
        path, code = profile_file
        exit_code = main(["solve", "--profile", str(path), "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_solutions"] == 1
        recovered = SystematicLinearCode.from_parity_columns(
            payload["candidates"][0], payload["num_parity_bits"]
        )
        assert codes_equivalent(recovered, code)

    def test_simulate_profile_json(self, tmp_path, capsys):
        output = tmp_path / "profile.json"
        exit_code = main(
            ["simulate-profile", "--vendor", "B", "--data-bits", "8",
             "--rounds", "4", "--output", str(output), "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["vendor"] == "B"
        assert payload["num_data_bits"] == 8
        assert payload["num_entries"] == 8 + 28
        assert json.loads(output.read_text())["num_data_bits"] == 8

    def test_einsim_json(self, capsys):
        exit_code = main(
            ["einsim", "--data-bits", "8", "--num-words", "300",
             "--ber", "0.01", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_words"] == 300
        assert len(payload["post_correction_error_counts"]) == 8

    def test_beep_json(self, capsys):
        exit_code = main(
            ["beep", "--data-bits", "16", "--error-positions", "2,9", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["true_positions"] == [2, 9]
        assert payload["fully_identified"] == (exit_code == 0)


class TestScenarioCommands:
    SWEEP = {
        "name": "cli-sweep",
        "num_words": 200,
        "chunk_size": 64,
        "seeds": [0],
        "backends": ["packed"],
        "codes": [{"data_bits": 8}],
        "scenarios": [
            {"name": "uniform-random", "params": {"bit_error_rate": [0.005, 0.02]}},
            {"name": "burst", "params": {"burst_probability": 0.1}},
        ],
    }

    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(self.SWEEP))
        return path

    def test_scenario_list_mentions_every_registered_scenario(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_scenario_list_json(self, capsys):
        assert main(["scenario", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload]
        assert "transient-stuck-overlay" in names

    def test_scenario_run_with_store_caches(self, tmp_path, capsys):
        store = tmp_path / "camp"
        args = ["scenario", "run", "--scenario", "uniform-random",
                "--param", "bit_error_rate=0.01", "--data-bits", "8",
                "--num-words", "200", "--store", str(store), "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cached"] is False
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] is True
        assert first["result"] == second["result"]

    def test_scenario_sweep_second_run_fully_cached(self, spec_file, tmp_path, capsys):
        store = tmp_path / "camp"
        args = ["scenario", "sweep", "--spec", str(spec_file),
                "--store", str(store), "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["simulated"] == 3 and first["cached"] == 0
        assert main(args + ["--resume"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["simulated"] == 0 and second["cached"] == 3

    def test_scenario_sweep_interrupt_and_resume(self, spec_file, tmp_path, capsys):
        store = tmp_path / "camp"
        exit_code = main(
            ["scenario", "sweep", "--spec", str(spec_file), "--store", str(store),
             "--max-cells", "1", "--json"]
        )
        assert exit_code == 3
        partial = json.loads(capsys.readouterr().out)
        assert partial["simulated"] == 1 and not partial["completed"]
        assert main(
            ["scenario", "sweep", "--spec", str(spec_file), "--store", str(store),
             "--resume", "--json"]
        ) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["completed"]
        assert resumed["simulated"] == 2 and resumed["cached"] == 1

    def test_scenario_sweep_jobs_matches_serial_store(self, spec_file, tmp_path, capsys):
        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        assert main(["scenario", "sweep", "--spec", str(spec_file),
                     "--store", str(serial), "--json"]) == 0
        capsys.readouterr()
        assert main(["scenario", "sweep", "--spec", str(spec_file),
                     "--store", str(parallel), "--jobs", "2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["simulated"] == 3
        assert (serial / "records.jsonl").read_bytes() == (
            parallel / "records.jsonl"
        ).read_bytes()

    def test_scenario_report(self, spec_file, tmp_path, capsys):
        store = tmp_path / "camp"
        main(["scenario", "sweep", "--spec", str(spec_file), "--store", str(store)])
        capsys.readouterr()
        assert main(["scenario", "report", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_records"] == 3
        scenarios = {row["scenario"] for row in payload["scenarios"]}
        assert scenarios == {"uniform-random", "burst"}

    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])


class TestSimulateProfileBackend:
    def test_backends_emit_identical_profiles(self, tmp_path):
        """The simulated chip campaign is backend-invariant bit for bit."""
        payloads = {}
        for backend in ("reference", "packed"):
            output = tmp_path / f"profile_{backend}.json"
            exit_code = main(
                [
                    "simulate-profile",
                    "--vendor", "A",
                    "--data-bits", "8",
                    "--rounds", "4",
                    "--backend", backend,
                    "--output", str(output),
                ]
            )
            assert exit_code == 0
            payloads[backend] = json.loads(output.read_text())
        assert payloads["reference"] == payloads["packed"]


class TestSatStatsFlag:
    def test_solve_sat_stats_requires_sat_backend(self, profile_file, capsys):
        path, _ = profile_file
        exit_code = main(["solve", "--profile", str(path), "--sat-stats"])
        assert exit_code == 2
        assert "--backend sat" in capsys.readouterr().err

    def test_solve_sat_stats_json(self, profile_file, capsys):
        path, _ = profile_file
        exit_code = main([
            "solve", "--profile", str(path), "--backend", "sat", "--sat-stats", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["solver_stats"]
        assert stats["solve_calls"] > 0
        assert stats["decisions"] > 0

    def test_solve_sat_stats_text(self, profile_file, capsys):
        path, _ = profile_file
        exit_code = main([
            "solve", "--profile", str(path), "--backend", "sat", "--sat-stats",
        ])
        assert exit_code == 0
        assert "SAT solver statistics" in capsys.readouterr().out

    def test_beep_sat_stats_requires_sat_pattern_backend(self, capsys):
        exit_code = main([
            "beep", "--data-bits", "16", "--error-positions", "2,9", "--sat-stats",
        ])
        assert exit_code == 2
        assert "--pattern-backend sat" in capsys.readouterr().err

    def test_beep_sat_stats_json(self, capsys):
        exit_code = main([
            "beep", "--data-bits", "16", "--error-positions", "2,9",
            "--pattern-backend", "sat", "--sat-stats", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fully_identified"]
        assert payload["pattern_backend"] == "sat"
        assert payload["sat_solver_stats"]["solve_calls"] > 0

    def test_beep_sat_pattern_backend_identifies_errors(self, capsys):
        exit_code = main([
            "beep", "--data-bits", "16", "--error-positions", "2,9",
            "--pattern-backend", "sat", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fully_identified"]
        assert "sat_solver_stats" not in payload

    def test_beep_sat_stats_text(self, capsys):
        exit_code = main([
            "beep", "--data-bits", "16", "--error-positions", "2,9",
            "--pattern-backend", "sat", "--sat-stats",
        ])
        assert exit_code == 0
        assert "SAT solver statistics" in capsys.readouterr().out


class TestCodeFamilyFlag:
    """--code-family threads the pluggable family registry through the CLI."""

    def test_parser_accepts_and_rejects_families(self):
        args = build_parser().parse_args(
            ["einsim", "--code-family", "secded-extended-hamming"]
        )
        assert args.code_family == "secded-extended-hamming"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["einsim", "--code-family", "turbo"])

    def test_einsim_secded_reports_due_words(self, capsys):
        exit_code = main(
            ["einsim", "--data-bits", "8", "--num-words", "2000",
             "--ber", "0.02", "--code-family", "secded-extended-hamming",
             "--backend", "packed", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["code_family"] == "secded-extended-hamming"
        assert payload["detected_words"] > 0

    def test_einsim_detect_only_family_never_miscorrects(self, capsys):
        exit_code = main(
            ["einsim", "--data-bits", "8", "--num-words", "1000",
             "--ber", "0.02", "--code-family", "parity-detect", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["miscorrected_words"] == 0
        assert payload["detected_words"] > 0
        assert payload["codeword_length"] == 9

    def test_simulate_profile_then_solve_secded_roundtrip(self, tmp_path, capsys):
        # SECDED miscorrections need >=3 coincident raw errors (doubles are
        # DUEs), so the campaign needs more rounds than the SEC default to
        # observe the full profile.
        output = tmp_path / "secded_profile.json"
        exit_code = main(
            ["simulate-profile", "--vendor", "B", "--data-bits", "8",
             "--rounds", "16", "--code-family", "secded-extended-hamming",
             "--output", str(output), "--json"]
        )
        assert exit_code == 0
        assert json.loads(capsys.readouterr().out)["code_family"] == (
            "secded-extended-hamming"
        )
        exit_code = main(
            ["solve", "--profile", str(output),
             "--code-family", "secded-extended-hamming", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["code_family"] == "secded-extended-hamming"
        assert payload["num_solutions"] == 1
        assert payload["design_space_columns"] == 11
        # The recovered function is vendor B's actual SECDED matrix (up to
        # equivalence -- B's ascending construction is its own canonical pick).
        from repro import VENDOR_B

        recovered = SystematicLinearCode.from_parity_columns(
            payload["candidates"][0], payload["num_parity_bits"]
        )
        truth = VENDOR_B.ecc_function(8, code_family="secded-extended-hamming")
        assert codes_equivalent(recovered, truth)

    def test_solve_rejects_fixed_structure_family(self, profile_file, capsys):
        path, _ = profile_file
        exit_code = main(
            ["solve", "--profile", str(path), "--code-family", "parity-detect"]
        )
        assert exit_code == 2
        assert "fixed structure" in capsys.readouterr().err

    def test_simulate_profile_rejects_fixed_structure_family(self, tmp_path, capsys):
        exit_code = main(
            ["simulate-profile", "--code-family", "repetition",
             "--output", str(tmp_path / "p.json")]
        )
        assert exit_code == 2
        assert "fixed structure" in capsys.readouterr().err

    def test_beep_rejects_detect_only_family(self, capsys):
        exit_code = main(
            ["beep", "--data-bits", "8", "--error-positions", "2",
             "--code-family", "parity-detect"]
        )
        assert exit_code == 2
        assert "detect-only" in capsys.readouterr().err

    def test_beep_secded_suppresses_miscorrection_signal(self, capsys):
        # The same two weak cells BEEP fully identifies under SEC Hamming are
        # invisible under SEC-DED: their coincident failure is a double
        # error, which the extended code *detects* instead of miscorrecting.
        # The command must still run and report the partial result honestly.
        exit_code = main(
            ["beep", "--data-bits", "16", "--error-positions", "2,9",
             "--passes", "2", "--code-family", "secded-extended-hamming",
             "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["code_family"] == "secded-extended-hamming"
        assert exit_code == 1
        assert not payload["fully_identified"]
        assert payload["miscorrections_observed"] == 0

    def test_scenario_run_code_family_changes_store_key(self, tmp_path, capsys):
        base = ["scenario", "run", "--scenario", "uniform-random",
                "--param", "bit_error_rate=0.01", "--data-bits", "8",
                "--num-words", "100", "--json"]
        assert main(base) == 0
        default_key = json.loads(capsys.readouterr().out)["key"]
        assert main(base + ["--code-family", "secded-extended-hamming"]) == 0
        secded = json.loads(capsys.readouterr().out)
        assert secded["key"] != default_key
        assert secded["config"]["code"]["code_family"] == "secded-extended-hamming"
        assert secded["result"]["code_family"] == "secded-extended-hamming"


class TestScenarioJsonOutputs:
    """scenario list/report emit one valid machine-readable JSON document."""

    def test_scenario_list_json_is_valid_and_complete(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenario", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert [entry["name"] for entry in payload] == [
            definition for definition in scenario_names()
        ]
        for entry in payload:
            assert set(entry) == {"name", "description", "parameters"}

    def test_scenario_report_json_is_valid(self, tmp_path, capsys):
        store = tmp_path / "camp"
        assert main(
            ["scenario", "run", "--scenario", "uniform-random",
             "--param", "bit_error_rate=0.02", "--data-bits", "8",
             "--num-words", "200", "--store", str(store)]
        ) == 0
        capsys.readouterr()
        assert main(["scenario", "report", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_records"] == 1
        row = payload["scenarios"][0]
        assert row["scenario"] == "uniform-random"
        assert {"detected_words", "detected_fraction", "code_families"} <= set(row)
        assert row["code_families"] == ["sec-hamming"]

    def test_scenario_report_aggregates_families(self, tmp_path, capsys):
        store = tmp_path / "camp"
        for family_args in ([], ["--code-family", "parity-detect"]):
            assert main(
                ["scenario", "run", "--scenario", "uniform-random",
                 "--param", "bit_error_rate=0.02", "--data-bits", "8",
                 "--num-words", "200", "--store", str(store)] + family_args
            ) == 0
        capsys.readouterr()
        assert main(["scenario", "report", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        row = payload["scenarios"][0]
        assert row["code_families"] == ["parity-detect", "sec-hamming"]
        assert row["detected_words"] > 0

    def test_einsim_repetition_beyond_table_limit_fails_cleanly(self, capsys):
        exit_code = main(
            ["einsim", "--data-bits", "32", "--num-words", "10",
             "--code-family", "repetition"]
        )
        assert exit_code == 2
        assert "table-decode limit" in capsys.readouterr().err

    def test_beep_repetition_beyond_table_limit_fails_cleanly(self, capsys):
        exit_code = main(
            ["beep", "--data-bits", "16", "--error-positions", "2",
             "--code-family", "repetition"]
        )
        assert exit_code == 2
        assert "table-decode limit" in capsys.readouterr().err
