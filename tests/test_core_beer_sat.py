"""Tests for the SAT-backed BEER solver and its agreement with the fast backend."""

import numpy as np
import pytest

from repro.exceptions import ProfileError, SolverError
from repro.ecc import codes_equivalent, example_7_4_code, hamming_code, random_hamming_code
from repro.core import (
    BeerSolver,
    ChargedPattern,
    MiscorrectionProfile,
    SatBeerSolver,
    charged_patterns,
    expected_miscorrection_profile,
    one_charged_patterns,
)


def profile_for(code, weights):
    return expected_miscorrection_profile(
        code, list(charged_patterns(code.num_data_bits, weights))
    )


class TestSatBackendBasics:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(SolverError):
            SatBeerSolver(0)

    def test_profile_length_mismatch_rejected(self):
        with pytest.raises(ProfileError):
            SatBeerSolver(4, 3).solve(MiscorrectionProfile(5))

    def test_default_parity_bits(self):
        assert SatBeerSolver(11).num_parity_bits == 4

    def test_higher_weight_patterns_rejected(self):
        profile = MiscorrectionProfile(4)
        profile.record(ChargedPattern(4, [0, 1, 2]), [])
        with pytest.raises(SolverError):
            SatBeerSolver(4, 3).solve(profile)

    def test_zero_weight_pattern_is_ignored(self):
        code = example_7_4_code()
        profile = profile_for(code, [1])
        profile.record(ChargedPattern(4, []), [])
        solution = SatBeerSolver(4, 3).solve(profile)
        assert solution.unique


class TestSatRecovery:
    def test_paper_example_recovered(self):
        code = example_7_4_code()
        solution = SatBeerSolver(4, 3).solve(profile_for(code, [1]))
        assert solution.unique
        assert codes_equivalent(solution.code, code)

    def test_shortened_code_with_one_two_charged(self):
        code = random_hamming_code(6, rng=np.random.default_rng(3))
        solution = SatBeerSolver(6).solve(profile_for(code, [1, 2]))
        assert solution.unique
        assert codes_equivalent(solution.code, code)

    def test_max_solutions_truncates(self):
        solution = SatBeerSolver(2, 3).solve(MiscorrectionProfile(2), max_solutions=2)
        assert solution.num_solutions == 2
        assert solution.truncated

    def test_ambiguous_one_charged_profile_yields_multiple_codes(self):
        # A heavily shortened code where 1-CHARGED alone is not unique: two
        # disjoint-support columns give the same empty profile as two
        # overlapping-support columns.
        from repro.ecc import SystematicLinearCode

        code = SystematicLinearCode.from_parity_columns([0b0011, 0b1100], 4)
        solution = SatBeerSolver(2, 4).solve(profile_for(code, [1]), max_solutions=8)
        assert solution.num_solutions > 1
        assert any(codes_equivalent(code, candidate) for candidate in solution.codes)


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sat_and_specialised_backends_agree_on_uniqueness(self, seed):
        code = random_hamming_code(5, num_parity_bits=4, rng=np.random.default_rng(seed))
        profile = profile_for(code, [1, 2])
        fast = BeerSolver(5, 4).solve(profile)
        sat = SatBeerSolver(5, 4).solve(profile)
        assert fast.num_solutions == sat.num_solutions
        for candidate in sat.codes:
            assert any(codes_equivalent(candidate, other) for other in fast.codes)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_backends_agree_on_solution_sets_for_one_charged(self, seed):
        code = random_hamming_code(4, num_parity_bits=4, rng=np.random.default_rng(seed))
        profile = profile_for(code, [1])
        fast = BeerSolver(4, 4).solve(profile)
        sat = SatBeerSolver(4, 4).solve(profile)
        assert fast.num_solutions == sat.num_solutions
        for candidate in fast.codes:
            assert any(codes_equivalent(candidate, other) for other in sat.codes)

    def test_full_length_code_unique_under_both_backends(self):
        code = hamming_code(4, num_parity_bits=3)
        profile = profile_for(code, [1])
        assert BeerSolver(4, 3).solve(profile).unique
        assert SatBeerSolver(4, 3).solve(profile).unique

    def test_recovered_codes_reproduce_profile(self):
        code = random_hamming_code(6, rng=np.random.default_rng(21))
        patterns = one_charged_patterns(6)
        profile = expected_miscorrection_profile(code, patterns)
        solution = SatBeerSolver(6).solve(profile, max_solutions=4)
        for candidate in solution.codes:
            assert expected_miscorrection_profile(candidate, patterns) == profile


class TestIncrementalEnumeration:
    """The persistent-solver path against the historical one-shot oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_incremental_and_one_shot_find_identical_canonical_sets(self, seed):
        from repro.ecc.codespace import canonical_form

        code = random_hamming_code(5, num_parity_bits=4, rng=np.random.default_rng(seed))
        profile = profile_for(code, [1, 2])
        solver = SatBeerSolver(5, 4)
        incremental = solver.solve(profile)
        one_shot = solver.solve(profile, incremental=False)
        assert {canonical_form(c) for c in incremental.codes} == {
            canonical_form(c) for c in one_shot.codes
        }

    def test_incremental_solve_reports_solver_stats(self):
        code = example_7_4_code()
        solution = SatBeerSolver(4, 3).solve(profile_for(code, [1]))
        stats = solution.solver_stats
        assert stats is not None
        assert stats["solve_calls"] == solution.nodes_visited + 1  # final UNSAT call
        assert stats["decisions"] > 0

    def test_one_shot_oracle_reports_no_stats(self):
        code = example_7_4_code()
        solution = SatBeerSolver(4, 3).solve(profile_for(code, [1]), incremental=False)
        assert solution.solver_stats is None

    def test_known_columns_restrict_the_search(self):
        code = random_hamming_code(6, rng=np.random.default_rng(3))
        profile = profile_for(code, [1, 2])
        pinned = {0: code.parity_column_ints[0], 1: code.parity_column_ints[1]}
        solution = SatBeerSolver(6).solve(profile, known_columns=pinned)
        assert solution.num_solutions == 1
        # Pinning collapses row-permutation symmetry: the surviving models
        # are a subset of the unpinned enumeration.
        unpinned = SatBeerSolver(6).solve(profile)
        assert solution.nodes_visited <= unpinned.nodes_visited
        assert solution.codes[0].parity_column_ints[:2] == tuple(pinned.values())

    def test_known_columns_validation(self):
        code = example_7_4_code()
        profile = profile_for(code, [1])
        with pytest.raises(SolverError):
            SatBeerSolver(4, 3).solve(profile, known_columns={9: 1})
        with pytest.raises(SolverError):
            SatBeerSolver(4, 3).solve(profile, known_columns={0: 1 << 7})
