"""The tree itself must satisfy its own linter: `repro lint src benchmarks`.

This is the in-tree version of the CI gate — a rule regression or a new
violation anywhere in the library or benchmark definitions fails the
ordinary test suite, not just the lint job.
"""

from pathlib import Path

from repro.lint import ALL_RULES, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_repo_is_lint_clean():
    findings, files_checked = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")], ALL_RULES
    )
    assert files_checked > 100  # the walk found the real tree
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_lint_package_lints_itself_strictly():
    """repro.lint dogfoods every rule with zero suppression comments."""
    from repro.lint.suppress import parse_suppressions

    lint_dir = REPO_ROOT / "src" / "repro" / "lint"
    findings, _ = lint_paths([str(lint_dir)], ALL_RULES)
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)
    for path in sorted(lint_dir.rglob("*.py")):
        assert parse_suppressions(path.read_text(encoding="utf-8")) == []
