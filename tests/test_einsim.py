"""Unit and integration tests for the EINSim-equivalent simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ChipConfigurationError, DimensionError
from repro.gf2 import GF2Vector
from repro.ecc import SyndromeDecoder, example_7_4_code, hamming_code, random_hamming_code
from repro.dram import CellType
from repro.einsim import (
    BootstrapInterval,
    BurstErrorInjector,
    CompositeInjector,
    DataRetentionInjector,
    EinsimSimulator,
    FaultModelInjector,
    FixedErrorCountInjector,
    MixedCellRetentionInjector,
    PerBitBernoulliInjector,
    RowStripeInjector,
    UniformRandomInjector,
    bootstrap_confidence_interval,
    bulk_decode,
    relative_probabilities,
)
from repro.einsim.statistics import empirical_rate


class TestInjectors:
    def test_uniform_injector_rate(self):
        injector = UniformRandomInjector(0.3)
        stored = np.zeros((500, 40), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(0))
        assert mask.shape == stored.shape
        assert mask.mean() == pytest.approx(0.3, abs=0.03)

    def test_uniform_injector_validation(self):
        with pytest.raises(ChipConfigurationError):
            UniformRandomInjector(1.5)

    def test_retention_injector_true_cells_only_flip_ones(self):
        injector = DataRetentionInjector(1.0, CellType.TRUE_CELL)
        stored = np.array([[1, 0, 1, 0]], dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(0))
        assert mask.tolist() == [[True, False, True, False]]

    def test_retention_injector_anti_cells_only_flip_zeros(self):
        injector = DataRetentionInjector(1.0, CellType.ANTI_CELL)
        stored = np.array([[1, 0, 1, 0]], dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(0))
        assert mask.tolist() == [[False, True, False, True]]

    def test_retention_injector_rate(self):
        injector = DataRetentionInjector(0.5)
        stored = np.ones((200, 50), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(1))
        assert mask.mean() == pytest.approx(0.5, abs=0.05)

    def test_fixed_count_injector_exact_count(self):
        injector = FixedErrorCountInjector(3)
        stored = np.zeros((50, 20), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(2))
        assert (mask.sum(axis=1) == 3).all()

    def test_fixed_count_injector_candidate_restriction(self):
        injector = FixedErrorCountInjector(2, candidate_positions=[0, 1, 2])
        stored = np.zeros((20, 10), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(3))
        assert not mask[:, 3:].any()

    def test_fixed_count_injector_per_bit_probability(self):
        injector = FixedErrorCountInjector(4, per_bit_probability=0.0)
        stored = np.zeros((10, 10), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(4))
        assert not mask.any()

    def test_fixed_count_injector_validation(self):
        with pytest.raises(ChipConfigurationError):
            FixedErrorCountInjector(-1)
        with pytest.raises(ChipConfigurationError):
            FixedErrorCountInjector(5, candidate_positions=[0, 1]).error_mask(
                np.zeros((1, 4), dtype=np.uint8), np.random.default_rng(0)
            )

    def test_per_bit_injector(self):
        probabilities = [0.0, 1.0, 0.0, 1.0]
        injector = PerBitBernoulliInjector(probabilities)
        stored = np.zeros((10, 4), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(5))
        assert not mask[:, 0].any() and mask[:, 1].all()

    def test_per_bit_injector_validation(self):
        with pytest.raises(ChipConfigurationError):
            PerBitBernoulliInjector([[0.1]])
        with pytest.raises(ChipConfigurationError):
            PerBitBernoulliInjector([0.5, 1.2])
        with pytest.raises(ChipConfigurationError):
            PerBitBernoulliInjector([0.5]).error_mask(
                np.zeros((1, 3), dtype=np.uint8), np.random.default_rng(0)
            )


class TestFixedCountVectorisedContract:
    """Seeded regression tests for the vectorised without-replacement draw."""

    def test_exactly_num_errors_candidates_per_word(self):
        # With per_bit_probability == 1 every selected candidate fires, so
        # every word must carry exactly num_errors flips.
        injector = FixedErrorCountInjector(4)
        stored = np.zeros((2000, 24), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(10))
        assert (mask.sum(axis=1) == 4).all()

    def test_candidate_selection_is_uniform(self):
        # Each of the 12 candidate positions must be chosen with probability
        # num_errors / num_candidates = 1/4.
        injector = FixedErrorCountInjector(3, candidate_positions=list(range(12)))
        stored = np.zeros((6000, 16), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(11))
        per_position = mask.mean(axis=0)
        assert not mask[:, 12:].any()
        np.testing.assert_allclose(per_position[:12], 3 / 12, atol=0.02)

    def test_per_bit_probability_thins_selected_candidates(self):
        # Selected candidates fire independently with probability p, so the
        # per-word flip count is Binomial(num_errors, p).
        injector = FixedErrorCountInjector(6, per_bit_probability=0.5)
        stored = np.zeros((4000, 20), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(12))
        counts = mask.sum(axis=1)
        assert counts.max() <= 6
        assert counts.mean() == pytest.approx(3.0, abs=0.1)
        assert counts.var() == pytest.approx(6 * 0.5 * 0.5, abs=0.15)

    def test_all_candidates_selected_when_count_equals_candidates(self):
        injector = FixedErrorCountInjector(3, candidate_positions=[1, 4, 7])
        stored = np.zeros((50, 10), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(13))
        assert mask[:, [1, 4, 7]].all()
        assert mask.sum() == 150

    def test_zero_errors_gives_empty_mask(self):
        injector = FixedErrorCountInjector(0)
        stored = np.zeros((10, 8), dtype=np.uint8)
        assert not injector.error_mask(stored, np.random.default_rng(14)).any()

    def test_seeded_mask_is_reproducible(self):
        injector = FixedErrorCountInjector(2)
        stored = np.zeros((100, 12), dtype=np.uint8)
        first = injector.error_mask(stored, np.random.default_rng(15))
        second = injector.error_mask(stored, np.random.default_rng(15))
        assert np.array_equal(first, second)

    def test_duplicate_candidate_positions_rejected(self):
        # Duplicates would let a non-firing copy overwrite a firing one in
        # the flat mask assignment, breaking the exactly-num_errors contract.
        with pytest.raises(ChipConfigurationError):
            FixedErrorCountInjector(2, candidate_positions=[3, 3, 5])


class TestNewInjectors:
    def test_mixed_cell_retention_default_alternating(self):
        injector = MixedCellRetentionInjector(1.0)
        # Even columns are true-cells (1s flip); odd columns anti (0s flip).
        stored = np.array([[1, 1, 0, 0]], dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(0))
        assert mask.tolist() == [[True, False, False, True]]

    def test_mixed_cell_retention_explicit_columns(self):
        injector = MixedCellRetentionInjector(1.0, anti_cell_columns=[0, 1])
        stored = np.array([[0, 1, 0, 1]], dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(0))
        assert mask.tolist() == [[True, False, False, True]]

    def test_mixed_cell_retention_out_of_range_column(self):
        injector = MixedCellRetentionInjector(0.5, anti_cell_columns=[9])
        with pytest.raises(ChipConfigurationError):
            injector.error_mask(np.zeros((1, 4), dtype=np.uint8), np.random.default_rng(0))

    def test_burst_injector_is_contiguous(self):
        injector = BurstErrorInjector(1.0, burst_length=3)
        stored = np.zeros((200, 16), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(1))
        for row in mask:
            positions = np.flatnonzero(row)
            assert len(positions) == 3
            assert positions[-1] - positions[0] == 2

    def test_burst_injector_probability_gates_words(self):
        injector = BurstErrorInjector(0.0, burst_length=4)
        stored = np.zeros((50, 16), dtype=np.uint8)
        assert not injector.error_mask(stored, np.random.default_rng(2)).any()

    def test_burst_longer_than_word_is_clamped(self):
        injector = BurstErrorInjector(1.0, burst_length=100)
        stored = np.zeros((10, 8), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(3))
        assert mask.all()

    def test_burst_validation(self):
        with pytest.raises(ChipConfigurationError):
            BurstErrorInjector(0.5, burst_length=0)

    def test_row_stripe_hits_only_stripe_columns(self):
        injector = RowStripeInjector(1.0, stripe_period=2, stripe_phase=1)
        stored = np.zeros((100, 8), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(4))
        assert mask[:, 1::2].all()
        assert not mask[:, 0::2].any()

    def test_row_stripe_victim_rate(self):
        injector = RowStripeInjector(0.25, stripe_period=1)
        stored = np.zeros((4000, 8), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(5))
        victim_fraction = mask.any(axis=1).mean()
        assert victim_fraction == pytest.approx(0.25, abs=0.03)

    def test_row_stripe_validation(self):
        with pytest.raises(ChipConfigurationError):
            RowStripeInjector(0.5, stripe_period=0)
        with pytest.raises(ChipConfigurationError):
            RowStripeInjector(0.5, stripe_period=2, stripe_phase=2)

    def test_composite_is_union_of_members(self):
        composite = CompositeInjector(
            [PerBitBernoulliInjector([1, 0, 0, 0]), PerBitBernoulliInjector([0, 0, 0, 1])]
        )
        stored = np.zeros((10, 4), dtype=np.uint8)
        mask = composite.error_mask(stored, np.random.default_rng(6))
        assert mask[:, 0].all() and mask[:, 3].all()
        assert not mask[:, 1:3].any()

    def test_composite_requires_members(self):
        with pytest.raises(ChipConfigurationError):
            CompositeInjector([])

    def test_fault_model_injector_requires_corrupt(self):
        with pytest.raises(ChipConfigurationError):
            FaultModelInjector(object())


class TestBulkDecode:
    def test_bulk_decode_matches_scalar_decoder(self):
        code = example_7_4_code()
        decoder = SyndromeDecoder(code)
        rng = np.random.default_rng(7)
        received = rng.integers(0, 2, size=(64, 7)).astype(np.uint8)
        bulk = bulk_decode(code, received)
        for row in range(received.shape[0]):
            expected = decoder.decode(GF2Vector(received[row])).corrected_codeword
            assert GF2Vector(bulk[row]) == expected

    def test_bulk_decode_shape_validation(self):
        with pytest.raises(DimensionError):
            bulk_decode(example_7_4_code(), np.zeros((4, 5), dtype=np.uint8))


class TestSimulator:
    def test_no_errors_no_post_correction_errors(self):
        simulator = EinsimSimulator(hamming_code(16), seed=0)
        result = simulator.simulate([1] * 16, 100, UniformRandomInjector(0.0))
        assert result.post_correction_error_counts.sum() == 0
        assert result.uncorrectable_words == 0
        assert result.miscorrected_words == 0

    def test_single_error_words_never_produce_post_correction_errors(self):
        code = hamming_code(16)
        simulator = EinsimSimulator(code, seed=1)
        result = simulator.simulate([1] * 16, 200, FixedErrorCountInjector(1))
        assert result.post_correction_error_counts.sum() == 0
        assert result.uncorrectable_words == 0

    def test_double_errors_are_uncorrectable(self):
        code = hamming_code(16)
        simulator = EinsimSimulator(code, seed=2)
        result = simulator.simulate([0] * 16, 300, FixedErrorCountInjector(2))
        assert result.uncorrectable_words == 300
        # A full-length-ish code miscorrects most double errors.
        assert result.miscorrected_words > 0
        assert result.post_correction_error_counts.sum() > 0

    def test_pre_correction_counts_match_injection_rate(self):
        code = hamming_code(8)
        simulator = EinsimSimulator(code, seed=3)
        result = simulator.simulate([1] * 8, 2000, UniformRandomInjector(0.05))
        per_bit = result.pre_correction_error_probabilities
        assert per_bit.shape == (code.codeword_length,)
        assert per_bit.mean() == pytest.approx(0.05, rel=0.2)

    def test_retention_injector_all_zero_pattern_is_error_free(self):
        # All data bits DISCHARGED (true cells): with an all-zero dataword the
        # parity bits are zero too, so no retention errors can occur at all.
        code = hamming_code(16)
        simulator = EinsimSimulator(code, seed=4)
        result = simulator.simulate(
            [0] * 16, 500, DataRetentionInjector(0.5, CellType.TRUE_CELL)
        )
        assert result.pre_correction_error_counts.sum() == 0
        assert result.post_correction_error_counts.sum() == 0

    def test_miscorrection_positions_reported(self):
        code = example_7_4_code()
        simulator = EinsimSimulator(code, seed=5)
        result = simulator.simulate([0, 0, 0, 0], 2000, UniformRandomInjector(0.2))
        assert result.miscorrected_words > 0
        assert all(0 <= p < 4 for p in result.miscorrection_positions)

    def test_batching_gives_same_totals(self):
        code = hamming_code(8)
        big_batch = EinsimSimulator(code, seed=6).simulate(
            [1] * 8, 1000, UniformRandomInjector(0.02), batch_size=1000
        )
        small_batch = EinsimSimulator(code, seed=6).simulate(
            [1] * 8, 1000, UniformRandomInjector(0.02), batch_size=64
        )
        assert big_batch.num_words == small_batch.num_words == 1000
        # Different RNG consumption order, so compare only coarse statistics.
        assert big_batch.pre_correction_error_counts.sum() == pytest.approx(
            small_batch.pre_correction_error_counts.sum(), rel=0.35
        )

    def test_dataword_validation(self):
        simulator = EinsimSimulator(hamming_code(8))
        with pytest.raises(DimensionError):
            simulator.simulate([1] * 9, 10, UniformRandomInjector(0.1))

    def test_per_bit_error_probability_wrapper(self):
        simulator = EinsimSimulator(hamming_code(8), seed=7)
        probabilities = simulator.per_bit_error_probability(
            [1] * 8, 100, UniformRandomInjector(0.0)
        )
        assert probabilities.shape == (8,)
        assert (probabilities == 0).all()

    def test_different_ecc_functions_produce_different_profiles(self):
        # The essence of Figure 1: same pre-correction behaviour, different
        # post-correction profiles for different ECC functions.
        rng = np.random.default_rng(8)
        first_code = random_hamming_code(16, rng=rng)
        second_code = random_hamming_code(16, rng=rng)
        injector = UniformRandomInjector(0.05)
        first = EinsimSimulator(first_code, seed=9).simulate([1] * 16, 3000, injector)
        second = EinsimSimulator(second_code, seed=9).simulate([1] * 16, 3000, injector)
        assert not np.array_equal(
            first.post_correction_error_counts, second.post_correction_error_counts
        )


class TestStatistics:
    def test_bootstrap_interval_contains_estimate(self):
        samples = np.random.default_rng(0).normal(10, 1, size=200)
        interval = bootstrap_confidence_interval(samples, rng=np.random.default_rng(1))
        assert isinstance(interval, BootstrapInterval)
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.contains(interval.estimate)

    def test_bootstrap_interval_narrows_with_more_data(self):
        rng = np.random.default_rng(2)
        small = bootstrap_confidence_interval(rng.normal(0, 1, 20), rng=np.random.default_rng(3))
        large = bootstrap_confidence_interval(rng.normal(0, 1, 2000), rng=np.random.default_rng(4))
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([])
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], num_resamples=0)

    def test_bootstrap_is_deterministic_without_explicit_rng(self):
        # Regression: the default used to be an unseeded generator, which
        # broke the byte-identical campaign-store guarantee.
        samples = list(np.random.default_rng(5).normal(3, 1, size=100))
        first = bootstrap_confidence_interval(samples)
        second = bootstrap_confidence_interval(samples)
        assert first == second

    def test_bootstrap_default_rng_depends_on_the_data(self):
        rng = np.random.default_rng(6)
        first = bootstrap_confidence_interval(rng.normal(0, 1, 50))
        second = bootstrap_confidence_interval(rng.normal(0, 1, 50))
        assert first != second

    def test_bootstrap_explicit_seeded_rng_reproducible(self):
        samples = [1.0, 2.0, 5.0, 9.0, 2.5, 3.5]
        first = bootstrap_confidence_interval(samples, rng=np.random.default_rng(7))
        second = bootstrap_confidence_interval(samples, rng=np.random.default_rng(7))
        assert first == second

    def test_relative_probabilities(self):
        relative = relative_probabilities([1, 1, 2])
        assert relative.sum() == pytest.approx(1.0)
        assert relative[2] == pytest.approx(0.5)

    def test_relative_probabilities_all_zero(self):
        assert (relative_probabilities([0, 0, 0]) == 0).all()

    def test_empirical_rate(self):
        assert empirical_rate(3, 10) == 0.3
        assert empirical_rate(0, 0) == 0.0
        with pytest.raises(ValueError):
            empirical_rate(5, 3)


class TestSimulatorProperties:
    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=4, max_value=16))
    @settings(max_examples=15, deadline=None)
    def test_post_correction_errors_only_with_uncorrectable_words(self, seed, k):
        code = random_hamming_code(k, rng=np.random.default_rng(seed))
        simulator = EinsimSimulator(code, seed=seed)
        result = simulator.simulate([1] * k, 200, UniformRandomInjector(0.05))
        if result.uncorrectable_words == 0:
            assert result.post_correction_error_counts.sum() == 0


class TestSyndromeLookupCache:
    """Regression tests: the bulk-decode syndrome table is built once per code."""

    def test_bulk_decode_hits_cached_table(self, monkeypatch):
        from repro.ecc.code import SystematicLinearCode

        code = random_hamming_code(16, rng=np.random.default_rng(0))
        builds = []
        original = SystematicLinearCode._build_syndrome_position_table

        def counting_build(self):
            builds.append(self)
            return original(self)

        monkeypatch.setattr(
            SystematicLinearCode, "_build_syndrome_position_table", counting_build
        )
        words = np.random.default_rng(1).integers(
            0, 2, size=(64, code.codeword_length)
        ).astype(np.uint8)
        first = bulk_decode(code, words)
        second = bulk_decode(code, words)
        third = bulk_decode(code, words, backend="packed")
        assert len(builds) == 1  # built on first use, cached afterwards
        assert np.array_equal(first, second)
        assert np.array_equal(first, third)

    def test_table_identity_is_stable(self):
        code = random_hamming_code(8, rng=np.random.default_rng(2))
        assert code.syndrome_position_table() is code.syndrome_position_table()
        assert code.syndrome_fold_table() is code.syndrome_fold_table()
        assert code.parity_fold_table() is code.parity_fold_table()
        assert code.h_transpose_int64() is code.h_transpose_int64()

    def test_distinct_codes_do_not_share_tables(self):
        first = random_hamming_code(8, rng=np.random.default_rng(3))
        second = random_hamming_code(8, rng=np.random.default_rng(4))
        assert first.syndrome_position_table() is not second.syndrome_position_table()


class TestSimulatorBackends:
    def test_backend_property_and_validation(self):
        code = example_7_4_code()
        assert EinsimSimulator(code).backend == "reference"
        assert EinsimSimulator(code, backend="packed").backend == "packed"
        assert EinsimSimulator(code, backend="auto").backend in ("reference", "packed")
        with pytest.raises(ValueError):
            EinsimSimulator(code, backend="turbo")

    def test_merge_accumulates_counts(self):
        code = example_7_4_code()
        simulator = EinsimSimulator(code, seed=0)
        injector = UniformRandomInjector(0.02)
        first = simulator.simulate([1, 0, 1, 1], 500, injector)
        second = simulator.simulate([1, 0, 1, 1], 300, injector)
        merged = first.merge(second)
        assert merged.num_words == 800
        assert np.array_equal(
            merged.pre_correction_error_counts,
            first.pre_correction_error_counts + second.pre_correction_error_counts,
        )
        assert merged.miscorrected_words == (
            first.miscorrected_words + second.miscorrected_words
        )

    def test_merge_rejects_different_datawords(self):
        code = example_7_4_code()
        simulator = EinsimSimulator(code, seed=0)
        injector = UniformRandomInjector(0.02)
        first = simulator.simulate([1, 0, 1, 1], 100, injector)
        second = simulator.simulate([0, 0, 1, 1], 100, injector)
        with pytest.raises(DimensionError):
            first.merge(second)
