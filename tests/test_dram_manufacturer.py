"""Unit tests for manufacturer profiles and fault models."""

import numpy as np
import pytest

from repro.exceptions import ChipConfigurationError
from repro.dram import (
    CellType,
    ChipGeometry,
    StuckAtFaultModel,
    TransientFaultModel,
    VENDOR_A,
    VENDOR_B,
    VENDOR_C,
    all_vendors,
)
from repro.ecc import codes_equivalent


class TestManufacturerEccFunctions:
    def test_each_vendor_has_a_valid_sec_code(self):
        for vendor in all_vendors():
            code = vendor.ecc_function(16)
            assert code.num_data_bits == 16
            assert code.is_single_error_correcting()

    def test_vendors_use_different_functions(self):
        codes = [vendor.ecc_function(16) for vendor in all_vendors()]
        assert not codes_equivalent(codes[0], codes[1])
        assert not codes_equivalent(codes[1], codes[2]) or not codes_equivalent(
            codes[0], codes[2]
        )

    def test_same_vendor_same_function_across_chips(self):
        # Chips of the same model share the ECC function (paper Section 5.1.3).
        assert VENDOR_A.ecc_function(16) == VENDOR_A.ecc_function(16)
        assert VENDOR_B.ecc_function(32) == VENDOR_B.ecc_function(32)

    def test_vendor_b_columns_are_ascending(self):
        code = VENDOR_B.ecc_function(16)
        columns = list(code.parity_column_ints)
        assert columns == sorted(columns)

    def test_vendor_c_columns_grouped_by_weight(self):
        code = VENDOR_C.ecc_function(16)
        weights = [bin(c).count("1") for c in code.parity_column_ints]
        assert weights == sorted(weights)

    def test_default_dataword_length(self):
        code = VENDOR_A.ecc_function()
        assert code.num_data_bits == VENDOR_A.default_dataword_bits


class TestManufacturerCellLayouts:
    def test_vendors_a_and_b_are_true_cell_only(self):
        for vendor in (VENDOR_A, VENDOR_B):
            layout = vendor.cell_layout()
            assert all(
                layout.cell_type_for_row(row) is CellType.TRUE_CELL for row in range(64)
            )

    def test_vendor_c_has_both_cell_types(self):
        layout = VENDOR_C.cell_layout()
        types = {layout.cell_type_for_row(row) for row in range(layout.period)}
        assert types == {CellType.TRUE_CELL, CellType.ANTI_CELL}


class TestChipFactory:
    def test_make_chip_uses_vendor_code_and_layout(self):
        chip = VENDOR_C.make_chip(num_data_bits=16, geometry=ChipGeometry(56, 2), seed=3)
        assert chip.code == VENDOR_C.ecc_function(16)
        cell_types = {chip.cell_type_of_word(w) for w in range(chip.num_words)}
        assert cell_types == {CellType.TRUE_CELL, CellType.ANTI_CELL}

    def test_chips_differ_by_seed_but_share_code(self):
        first = VENDOR_A.make_chip(num_data_bits=16, seed=0)
        second = VENDOR_A.make_chip(num_data_bits=16, seed=1)
        assert first.code == second.code
        assert first.inspect_retention_time(0, 0) != second.inspect_retention_time(0, 0)

    def test_transient_fault_probability_passthrough(self):
        chip = VENDOR_A.make_chip(num_data_bits=16, transient_fault_probability=0.5, seed=0)
        chip.fill([0] * 16)
        assert chip.read_all_datawords().any()

    def test_all_vendors_returns_three_profiles(self):
        names = [vendor.name for vendor in all_vendors()]
        assert names == ["A", "B", "C"]


class TestFaultModels:
    def test_transient_model_rejects_bad_probability(self):
        with pytest.raises(ChipConfigurationError):
            TransientFaultModel(-0.1)
        with pytest.raises(ChipConfigurationError):
            TransientFaultModel(1.5)

    def test_transient_model_zero_probability_is_identity(self):
        model = TransientFaultModel(0.0)
        bits = np.ones((4, 8), dtype=np.uint8)
        assert np.array_equal(model.corrupt(bits, np.random.default_rng(0)), bits)

    def test_transient_model_flip_rate(self):
        model = TransientFaultModel(0.25)
        bits = np.zeros((100, 100), dtype=np.uint8)
        corrupted = model.corrupt(bits, np.random.default_rng(0))
        assert corrupted.mean() == pytest.approx(0.25, abs=0.03)

    def test_stuck_at_model_is_persistent(self):
        model = StuckAtFaultModel(stuck_fraction=0.3, stuck_value=1, rng=np.random.default_rng(1))
        bits = np.zeros((16, 16), dtype=np.uint8)
        first = model.corrupt(bits)
        second = model.corrupt(bits)
        assert np.array_equal(first, second)
        assert first.any()

    def test_stuck_at_model_validation(self):
        with pytest.raises(ChipConfigurationError):
            StuckAtFaultModel(stuck_fraction=2.0)
        with pytest.raises(ChipConfigurationError):
            StuckAtFaultModel(stuck_value=3)

    def test_stuck_at_zero_fraction_is_identity(self):
        model = StuckAtFaultModel(stuck_fraction=0.0)
        bits = np.ones((4, 4), dtype=np.uint8)
        assert np.array_equal(model.corrupt(bits), bits)
