"""Tests for the exception hierarchy."""

import pytest

from repro import exceptions


class TestExceptionHierarchy:
    def test_all_library_errors_derive_from_repro_error(self):
        derived = [
            exceptions.DimensionError,
            exceptions.SingularMatrixError,
            exceptions.CodeConstructionError,
            exceptions.DecodingError,
            exceptions.ChipConfigurationError,
            exceptions.AddressError,
            exceptions.ProfileError,
            exceptions.SolverError,
            exceptions.UnsatisfiableError,
            exceptions.PatternCraftingError,
        ]
        for error_type in derived:
            assert issubclass(error_type, exceptions.ReproError)

    def test_unsatisfiable_is_a_solver_error(self):
        assert issubclass(exceptions.UnsatisfiableError, exceptions.SolverError)

    def test_catching_the_base_class_catches_specific_errors(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.ProfileError("profile is malformed")

    def test_messages_are_preserved(self):
        error = exceptions.SolverError("node budget exhausted")
        assert "node budget exhausted" in str(error)

    def test_validation_error_is_both_repro_and_value_error(self):
        assert issubclass(exceptions.ValidationError, exceptions.ReproError)
        assert issubclass(exceptions.ValidationError, ValueError)
        with pytest.raises(ValueError):
            raise exceptions.ValidationError("out of range")
        with pytest.raises(exceptions.ReproError):
            raise exceptions.ValidationError("out of range")

    def test_unknown_name_error_is_both_repro_and_key_error(self):
        assert issubclass(exceptions.UnknownNameError, exceptions.ReproError)
        assert issubclass(exceptions.UnknownNameError, KeyError)
        with pytest.raises(KeyError):
            raise exceptions.UnknownNameError("no such workload")

    def test_unknown_name_error_message_is_not_quoted(self):
        # Plain KeyError str()-renders with quotes; the bridge undoes that
        # so CLI error lines stay readable.
        error = exceptions.UnknownNameError("unknown workload 'x'")
        assert str(error) == "unknown workload 'x'"
