"""Non-retention fault models flowing through the batched engine path.

Covers the satellite requirements: the stuck-at mask cache must be permanent
across interleaved batch shapes, and transient + stuck-at overlays must be
bit-identical between the ``reference`` and ``packed`` backends, both through
:class:`EinsimSimulator` and through a chip read path.
"""

import numpy as np
import pytest

from repro.dram import ChipGeometry, SimulatedDramChip, StuckAtFaultModel
from repro.dram.faults import TransientFaultModel
from repro.dram.retention import DataRetentionModel, RetentionCalibration
from repro.ecc import hamming_code
from repro.einsim import (
    BACKENDS,
    CompositeInjector,
    EinsimSimulator,
    FaultModelInjector,
)
from repro.exceptions import ChipConfigurationError


class TestStuckAtMaskCache:
    def test_mask_permanent_across_interleaved_shapes(self):
        model = StuckAtFaultModel(
            stuck_fraction=0.4, stuck_value=1, rng=np.random.default_rng(0)
        )
        shapes = [(8, 16), (3, 16), (8, 16), (3, 16), (8, 16)]
        masks = {}
        for shape in shapes:
            bits = np.zeros(shape, dtype=np.uint8)
            mask = model.corrupt(bits, None) == 1
            if shape in masks:
                assert np.array_equal(masks[shape], mask), (
                    "stuck mask changed after an interleaved batch shape"
                )
            else:
                masks[shape] = mask
        assert not np.array_equal(masks[(8, 16)][:3], masks[(3, 16)])

    def test_seeded_masks_independent_of_shape_order(self):
        first = StuckAtFaultModel(stuck_fraction=0.3, seed=7)
        second = StuckAtFaultModel(stuck_fraction=0.3, seed=7)
        big = np.zeros((8, 16), dtype=np.uint8)
        small = np.zeros((3, 16), dtype=np.uint8)
        # Opposite encounter order must give the same per-shape masks.
        first_big, first_small = first.corrupt(big, None), first.corrupt(small, None)
        second_small, second_big = second.corrupt(small, None), second.corrupt(big, None)
        assert np.array_equal(first_big, second_big)
        assert np.array_equal(first_small, second_small)

    def test_seed_and_rng_are_mutually_exclusive(self):
        with pytest.raises(ChipConfigurationError):
            StuckAtFaultModel(0.1, rng=np.random.default_rng(0), seed=1)


class TestFaultModelsThroughBatchedEngine:
    @pytest.fixture
    def overlay(self):
        return CompositeInjector(
            [
                FaultModelInjector(TransientFaultModel(0.02)),
                FaultModelInjector(StuckAtFaultModel(0.05, stuck_value=1, seed=3)),
            ]
        )

    def test_overlay_differential_equal_across_backends(self, overlay):
        code = hamming_code(16)
        results = {}
        for backend in BACKENDS:
            simulator = EinsimSimulator(code, seed=11, backend=backend)
            results[backend] = simulator.simulate(
                [0] * 16, 2000, overlay, batch_size=512
            )
        reference, packed = results["reference"], results["packed"]
        assert np.array_equal(
            reference.post_correction_error_counts,
            packed.post_correction_error_counts,
        )
        assert np.array_equal(
            reference.pre_correction_error_counts,
            packed.pre_correction_error_counts,
        )
        assert reference.uncorrectable_words == packed.uncorrectable_words
        assert reference.miscorrected_words == packed.miscorrected_words
        assert (
            reference.miscorrection_positions == packed.miscorrection_positions
        )

    def test_overlay_injects_both_mechanisms(self, overlay):
        code = hamming_code(16)
        simulator = EinsimSimulator(code, seed=5, backend="packed")
        result = simulator.simulate([0] * 16, 2000, overlay, batch_size=512)
        # Stuck-at-1 cells over an all-zero codeword plus transient flips
        # must inject noticeably more errors than either mechanism alone.
        assert result.pre_correction_error_counts.sum() > 0
        assert result.uncorrectable_words > 0

    def test_stuck_at_consistent_with_stored_value(self):
        # Stuck-at-0 cells never show errors when the stored bits are 0.
        injector = FaultModelInjector(StuckAtFaultModel(0.5, stuck_value=0, seed=1))
        stored = np.zeros((100, 16), dtype=np.uint8)
        mask = injector.error_mask(stored, np.random.default_rng(0))
        assert not mask.any()
        stored_ones = np.ones((100, 16), dtype=np.uint8)
        mask = injector.error_mask(stored_ones, np.random.default_rng(0))
        assert mask.mean() == pytest.approx(0.5, abs=0.05)


class TestChipLevelFaultsAcrossBackends:
    def test_transient_faults_on_chip_reads_backend_invariant(self):
        observed = {}
        for backend in BACKENDS:
            chip = SimulatedDramChip(
                code=hamming_code(8),
                geometry=ChipGeometry(num_rows=8, words_per_row=4),
                retention_model=DataRetentionModel(
                    RetentionCalibration(1.0, 0.02, 60.0, 0.5)
                ),
                transient_faults=TransientFaultModel(0.01),
                seed=9,
                backend=backend,
            )
            chip.fill([1] * 8)
            chip.pause_refresh(60.0, 80.0)
            observed[backend] = chip.read_all_datawords()
        assert np.array_equal(observed["reference"], observed["packed"])
