"""Unit and differential tests for the bit-packed GF(2) backend.

The packed implementation must be bit-for-bit equivalent to the uint8
reference implementation for every operation; these tests sweep seeded random
matrices across lane-boundary sizes plus degenerate edge cases.
"""

import numpy as np
import pytest

import repro.gf2.bitpack as bitpack
from repro.exceptions import DimensionError, SingularMatrixError
from repro.gf2 import (
    GF2Matrix,
    GF2Vector,
    gf2_null_space,
    gf2_rank,
    gf2_rref,
    gf2_solve,
    pack_rows,
    pack_vector,
    packed_gf2_null_space,
    packed_gf2_rank,
    packed_gf2_rref,
    packed_gf2_solve,
    packed_matmul,
    popcount_u64,
    unpack_rows,
    unpack_vector,
)
from repro.gf2.bitpack import PackedGF2Matrix, batched_syndrome_values

# Widths straddling the uint64 lane boundaries.
LANE_EDGE_WIDTHS = [1, 2, 7, 63, 64, 65, 127, 128, 129, 136]


class TestPacking:
    @pytest.mark.parametrize("num_cols", LANE_EDGE_WIDTHS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pack_unpack_round_trip(self, num_cols, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(5, num_cols)).astype(np.uint8)
        packed = pack_rows(bits)
        assert packed.dtype == np.uint64
        assert packed.shape == (5, (num_cols + 63) // 64)
        assert np.array_equal(unpack_rows(packed, num_cols), bits)

    def test_pack_vector_round_trip(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=130).astype(np.uint8)
        assert np.array_equal(unpack_vector(pack_vector(bits), 130), bits)

    def test_bit_positions_are_lsb_first(self):
        bits = np.zeros((1, 70), dtype=np.uint8)
        bits[0, 0] = 1
        bits[0, 65] = 1
        packed = pack_rows(bits)
        assert packed[0, 0] == 1
        assert packed[0, 1] == 2  # bit 65 → lane 1, bit 1

    def test_zero_width_matrix(self):
        packed = pack_rows(np.zeros((3, 0), dtype=np.uint8))
        assert packed.shape == (3, 0)
        assert unpack_rows(packed, 0).shape == (3, 0)

    def test_pack_rejects_wrong_rank(self):
        with pytest.raises(DimensionError):
            pack_rows(np.zeros(4, dtype=np.uint8))
        with pytest.raises(DimensionError):
            pack_vector(np.zeros((2, 2), dtype=np.uint8))

    def test_unpack_rejects_lane_mismatch(self):
        with pytest.raises(DimensionError):
            unpack_rows(np.zeros((2, 2), dtype=np.uint64), 64)


class TestPopcount:
    def test_matches_python_popcount(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 2**63, size=100, dtype=np.uint64)
        expected = np.array([bin(int(v)).count("1") for v in values])
        assert np.array_equal(popcount_u64(values), expected)

    def test_table_fallback_matches(self, monkeypatch):
        monkeypatch.setattr(bitpack, "_HAS_BITWISE_COUNT", False)
        rng = np.random.default_rng(5)
        values = rng.integers(0, 2**63, size=64, dtype=np.uint64)
        expected = np.array([bin(int(v)).count("1") for v in values])
        assert np.array_equal(bitpack.popcount_u64(values), expected)

    def test_fallback_handles_all_ones(self, monkeypatch):
        monkeypatch.setattr(bitpack, "_HAS_BITWISE_COUNT", False)
        assert bitpack.popcount_u64(np.array([2**64 - 1], dtype=np.uint64))[0] == 64


class TestPackedMatrixBasics:
    def test_from_dense_round_trip(self):
        rng = np.random.default_rng(6)
        dense = GF2Matrix(rng.integers(0, 2, size=(9, 70)))
        packed = PackedGF2Matrix.from_dense(dense)
        assert packed.shape == (9, 70)
        assert packed.to_dense() == dense

    def test_get_bit(self):
        dense = np.zeros((2, 66), dtype=np.uint8)
        dense[1, 65] = 1
        packed = PackedGF2Matrix.from_dense(dense)
        assert packed.get_bit(1, 65) == 1
        assert packed.get_bit(0, 65) == 0
        with pytest.raises(DimensionError):
            packed.get_bit(2, 0)

    def test_equality_and_hash(self):
        rng = np.random.default_rng(7)
        dense = rng.integers(0, 2, size=(3, 40))
        first = PackedGF2Matrix.from_dense(dense)
        second = PackedGF2Matrix.from_dense(dense)
        assert first == second
        assert hash(first) == hash(second)

    def test_matvec_accepts_dense_and_packed(self):
        rng = np.random.default_rng(8)
        matrix = GF2Matrix(rng.integers(0, 2, size=(11, 90)))
        vector = GF2Vector(rng.integers(0, 2, size=90))
        packed = PackedGF2Matrix.from_dense(matrix)
        expected = (matrix @ vector).to_numpy()
        assert np.array_equal(packed.matvec(vector), expected)
        assert np.array_equal(packed.matvec(pack_vector(vector.to_numpy())), expected)

    def test_matvec_rejects_bad_length(self):
        packed = PackedGF2Matrix.from_dense(np.zeros((2, 10), dtype=np.uint8))
        with pytest.raises(DimensionError):
            packed.matvec(np.zeros(11, dtype=np.uint8))


def _random_matrix(rng, rows, cols, density=0.5):
    return GF2Matrix((rng.random((rows, cols)) < density).astype(np.uint8))


DIFFERENTIAL_SHAPES = [
    (1, 1),
    (1, 64),
    (3, 63),
    (5, 65),
    (8, 8),
    (8, 136),
    (16, 16),
    (20, 7),
    (32, 129),
]


class TestDifferentialLinalg:
    """Packed vs reference equivalence for every public linalg operation."""

    @pytest.mark.parametrize("shape", DIFFERENTIAL_SHAPES)
    @pytest.mark.parametrize("seed", range(5))
    def test_rref_rank_null_space_match_reference(self, shape, seed):
        rng = np.random.default_rng(seed * 1000 + shape[0] * 31 + shape[1])
        matrix = _random_matrix(rng, *shape)
        ref_rref, ref_pivots = gf2_rref(matrix)
        packed_rref, packed_pivots = packed_gf2_rref(matrix)
        assert ref_rref == packed_rref
        assert ref_pivots == packed_pivots
        assert gf2_rank(matrix) == packed_gf2_rank(matrix)
        assert gf2_null_space(matrix) == packed_gf2_null_space(matrix)

    @pytest.mark.parametrize("shape", DIFFERENTIAL_SHAPES)
    @pytest.mark.parametrize("seed", range(5))
    def test_solve_matches_reference(self, shape, seed):
        rng = np.random.default_rng(seed * 7919 + shape[0] + shape[1])
        matrix = _random_matrix(rng, *shape)
        rhs = GF2Vector(rng.integers(0, 2, size=shape[0]))
        try:
            reference = gf2_solve(matrix, rhs)
            reference_ok = True
        except SingularMatrixError:
            reference_ok = False
        try:
            packed = packed_gf2_solve(matrix, rhs)
            packed_ok = True
        except SingularMatrixError:
            packed_ok = False
        assert reference_ok == packed_ok
        if reference_ok:
            assert reference == packed

    @pytest.mark.parametrize("seed", range(10))
    def test_matmul_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        m, k, p = (int(v) for v in rng.integers(1, 80, size=3))
        first = _random_matrix(rng, m, k)
        second = _random_matrix(rng, k, p)
        assert packed_matmul(first, second) == (first @ second)

    def test_degenerate_all_zero(self):
        matrix = GF2Matrix.zeros(4, 70)
        assert packed_gf2_rank(matrix) == 0
        rref, pivots = packed_gf2_rref(matrix)
        assert pivots == ()
        assert rref == matrix
        assert len(packed_gf2_null_space(matrix)) == 70

    def test_degenerate_identity(self):
        matrix = GF2Matrix.identity(65)
        assert packed_gf2_rank(matrix) == 65
        assert packed_gf2_null_space(matrix) == []
        rhs = GF2Vector.ones(65)
        assert packed_gf2_solve(matrix, rhs) == rhs

    def test_single_row_and_column(self):
        row = GF2Matrix([[1, 0, 1, 1]])
        assert packed_gf2_rank(row) == gf2_rank(row) == 1
        col = GF2Matrix([[1], [0], [1]])
        assert packed_gf2_rank(col) == gf2_rank(col) == 1
        assert gf2_null_space(col) == packed_gf2_null_space(col)


class TestBatchedSyndromes:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("codeword_length", [7, 22, 64, 72, 136])
    def test_matches_reference_formula(self, seed, codeword_length):
        rng = np.random.default_rng(seed + codeword_length)
        num_rows = int(rng.integers(2, 9))
        check = rng.integers(0, 2, size=(num_rows, codeword_length)).astype(np.uint8)
        words = rng.integers(0, 2, size=(50, codeword_length)).astype(np.uint8)
        reference = (
            (words.astype(np.int64) @ check.T.astype(np.int64)) % 2
        ) @ (1 << np.arange(num_rows))
        packed = batched_syndrome_values(pack_rows(check), pack_rows(words))
        assert np.array_equal(reference, packed)

    def test_empty_batch(self):
        check = pack_rows(np.ones((3, 10), dtype=np.uint8))
        words = pack_rows(np.zeros((0, 10), dtype=np.uint8))
        assert batched_syndrome_values(check, words).shape == (0,)

    def test_chunking_does_not_change_results(self, monkeypatch):
        monkeypatch.setattr(bitpack, "_SYNDROME_CHUNK_ELEMENTS", 16)
        rng = np.random.default_rng(11)
        check = rng.integers(0, 2, size=(5, 40)).astype(np.uint8)
        words = rng.integers(0, 2, size=(33, 40)).astype(np.uint8)
        reference = (
            (words.astype(np.int64) @ check.T.astype(np.int64)) % 2
        ) @ (1 << np.arange(5))
        packed = batched_syndrome_values(pack_rows(check), pack_rows(words))
        assert np.array_equal(reference, packed)

    def test_rejects_lane_mismatch(self):
        with pytest.raises(DimensionError):
            batched_syndrome_values(
                np.zeros((2, 1), dtype=np.uint64), np.zeros((4, 2), dtype=np.uint64)
            )
