"""Tests for the analytical runtime model and the secondary-ECC designer."""

import numpy as np
import pytest

from repro.ecc import hamming_code, random_hamming_code
from repro.analysis import ExperimentRuntimeModel, SecondaryEccDesigner


class TestExperimentRuntimeModel:
    def test_single_window_cost(self):
        model = ExperimentRuntimeModel(chip_read_seconds=0.2, chip_write_seconds=0.1)
        assert model.single_window_seconds(60.0) == pytest.approx(60.3)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRuntimeModel().single_window_seconds(-1.0)

    def test_sweep_is_sum_of_windows(self):
        model = ExperimentRuntimeModel(chip_read_seconds=0.0, chip_write_seconds=0.0)
        assert model.sweep_seconds([60.0, 120.0]) == pytest.approx(180.0)
        assert model.sweep_seconds([60.0], rounds_per_window=3) == pytest.approx(180.0)

    def test_sweep_requires_positive_rounds(self):
        with pytest.raises(ValueError):
            ExperimentRuntimeModel().sweep_seconds([60.0], rounds_per_window=0)

    def test_paper_sweep_is_about_4_2_hours(self):
        # Section 6.3: sweeping 2..22 minutes in 1-minute steps costs a
        # combined ~4.2 hours per chip.
        hours = ExperimentRuntimeModel().paper_sweep_seconds() / 3600.0
        assert hours == pytest.approx(4.2, abs=0.2)

    def test_parallelism_reduces_wall_clock(self):
        model = ExperimentRuntimeModel()
        windows = [60.0 * m for m in range(2, 23)]
        serial = model.sweep_seconds(windows)
        parallel = model.parallel_sweep_seconds(windows, num_chips=4)
        assert parallel < serial
        assert model.speedup_from_parallelism(windows, 4) > 2.0

    def test_parallelism_bounded_by_longest_window(self):
        model = ExperimentRuntimeModel(chip_read_seconds=0.0, chip_write_seconds=0.0)
        windows = [60.0, 120.0, 600.0]
        assert model.parallel_sweep_seconds(windows, num_chips=10) == pytest.approx(600.0)

    def test_parallel_requires_chips(self):
        with pytest.raises(ValueError):
            ExperimentRuntimeModel().parallel_sweep_seconds([60.0], num_chips=0)

    def test_empty_sweep(self):
        model = ExperimentRuntimeModel()
        assert model.parallel_sweep_seconds([], num_chips=2) == 0.0
        assert model.speedup_from_parallelism([], 2) == 1.0


class TestSecondaryEccDesigner:
    def test_characterise_shape(self):
        code = hamming_code(16)
        designer = SecondaryEccDesigner(code, seed=0)
        probabilities = designer.characterise(bit_error_rate=1e-3, num_words=20_000)
        assert probabilities.shape == (16,)
        assert (probabilities >= 0).all()

    def test_plan_selects_most_vulnerable_bits(self):
        code = random_hamming_code(16, rng=np.random.default_rng(2))
        designer = SecondaryEccDesigner(code, seed=1)
        plan = designer.plan(bit_error_rate=5e-3, protection_budget_bits=4, num_words=40_000)
        assert plan.num_protected_bits == 4
        assert len(plan.per_bit_error_probability) == 16
        probabilities = np.array(plan.per_bit_error_probability)
        protected_min = probabilities[plan.protected_bits].min()
        unprotected = [b for b in range(16) if b not in plan.protected_bits]
        assert protected_min >= probabilities[unprotected].max() - 1e-12
        assert 0.0 <= plan.coverage <= 1.0

    def test_plan_budget_validation(self):
        designer = SecondaryEccDesigner(hamming_code(8))
        with pytest.raises(ValueError):
            designer.plan(1e-3, protection_budget_bits=9)
        with pytest.raises(ValueError):
            designer.plan(1e-3, protection_budget_bits=-1)

    def test_zero_budget_plan(self):
        designer = SecondaryEccDesigner(hamming_code(8), seed=3)
        plan = designer.plan(1e-3, protection_budget_bits=0, num_words=5_000)
        assert plan.protected_bits == []
        assert plan.coverage == 0.0 or plan.coverage >= 0.0

    def test_full_budget_covers_everything(self):
        designer = SecondaryEccDesigner(hamming_code(8), seed=4)
        plan = designer.plan(5e-3, protection_budget_bits=8, num_words=20_000)
        assert plan.protected_bits == list(range(8))
        assert plan.coverage == pytest.approx(1.0)
