"""Unit tests for the data-retention error model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import DataRetentionModel, RetentionCalibration


class TestCalibration:
    def test_default_calibration_reproduces_anchor_points(self):
        model = DataRetentionModel()
        calibration = model.calibration
        assert model.failure_probability(calibration.window_low_s, 80.0) == pytest.approx(
            calibration.ber_low, rel=1e-6
        )
        assert model.failure_probability(calibration.window_high_s, 80.0) == pytest.approx(
            calibration.ber_high, rel=1e-6
        )

    def test_invalid_calibration_rejected(self):
        with pytest.raises(ValueError):
            RetentionCalibration(ber_low=0.5, ber_high=0.1).lognormal_parameters()
        with pytest.raises(ValueError):
            RetentionCalibration(window_low_s=100, window_high_s=50).lognormal_parameters()
        with pytest.raises(ValueError):
            RetentionCalibration(ber_low=0.0).lognormal_parameters()

    def test_custom_calibration(self):
        calibration = RetentionCalibration(60.0, 1e-6, 600.0, 1e-2)
        model = DataRetentionModel(calibration)
        assert model.failure_probability(60.0, 80.0) == pytest.approx(1e-6, rel=1e-6)
        assert model.failure_probability(600.0, 80.0) == pytest.approx(1e-2, rel=1e-6)


class TestFailureProbability:
    def test_monotonic_in_window(self):
        model = DataRetentionModel()
        windows = [30, 60, 120, 300, 600, 1200, 1800]
        probabilities = [model.failure_probability(w, 80.0) for w in windows]
        assert probabilities == sorted(probabilities)

    def test_monotonic_in_temperature(self):
        model = DataRetentionModel()
        temps = [30, 45, 60, 80, 95]
        probabilities = [model.failure_probability(600, t) for t in temps]
        assert probabilities == sorted(probabilities)

    def test_zero_window_means_no_failures(self):
        model = DataRetentionModel()
        assert model.failure_probability(0.0, 80.0) == 0.0

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            DataRetentionModel().failure_probability(-1.0, 80.0)

    def test_temperature_halving_rule(self):
        # +10 degC doubles the effective window.
        model = DataRetentionModel()
        assert model.effective_window(300, 90.0) == pytest.approx(600.0)
        assert model.effective_window(300, 70.0) == pytest.approx(150.0)

    def test_window_for_failure_probability_inverts(self):
        model = DataRetentionModel()
        for ber in [1e-6, 1e-4, 1e-3]:
            window = model.window_for_failure_probability(ber, 80.0)
            assert model.failure_probability(window, 80.0) == pytest.approx(ber, rel=1e-6)

    def test_window_for_failure_probability_temperature_consistency(self):
        model = DataRetentionModel()
        window_80 = model.window_for_failure_probability(1e-4, 80.0)
        window_90 = model.window_for_failure_probability(1e-4, 90.0)
        assert window_90 == pytest.approx(window_80 / 2.0)

    def test_invalid_target_ber(self):
        with pytest.raises(ValueError):
            DataRetentionModel().window_for_failure_probability(0.0, 80.0)
        with pytest.raises(ValueError):
            DataRetentionModel().window_for_failure_probability(1.0, 80.0)


class TestSampling:
    def test_sample_shape_and_positivity(self):
        model = DataRetentionModel()
        times = model.sample_retention_times(1000, np.random.default_rng(0))
        assert times.shape == (1000,)
        assert (times > 0).all()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DataRetentionModel().sample_retention_times(-1, np.random.default_rng(0))

    def test_sampling_is_reproducible(self):
        model = DataRetentionModel()
        first = model.sample_retention_times(100, np.random.default_rng(7))
        second = model.sample_retention_times(100, np.random.default_rng(7))
        assert np.array_equal(first, second)

    def test_empirical_failure_rate_matches_model(self):
        # At a window giving ~5% failures the empirical rate over many cells
        # should be close to the analytic probability.
        model = DataRetentionModel()
        rng = np.random.default_rng(3)
        times = model.sample_retention_times(200_000, rng)
        window = model.window_for_failure_probability(0.05, 80.0)
        empirical = model.cells_failing(times, window, 80.0).mean()
        assert empirical == pytest.approx(0.05, rel=0.15)

    def test_cells_failing_monotone_in_window(self):
        model = DataRetentionModel()
        times = model.sample_retention_times(10_000, np.random.default_rng(11))
        short = model.cells_failing(times, 300, 80.0)
        long = model.cells_failing(times, 3000, 80.0)
        # Every cell failing at the short window also fails at the long one.
        assert np.all(long[short])


class TestRetentionProperties:
    @given(
        st.floats(min_value=1.0, max_value=10_000.0),
        st.floats(min_value=20.0, max_value=95.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_probability_is_valid(self, window, temperature):
        probability = DataRetentionModel().failure_probability(window, temperature)
        assert 0.0 <= probability <= 1.0

    @given(
        st.floats(min_value=1.0, max_value=5_000.0),
        st.floats(min_value=1.0, max_value=5_000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_longer_window_never_reduces_probability(self, first, second):
        model = DataRetentionModel()
        low, high = sorted([first, second])
        assert model.failure_probability(low, 80.0) <= model.failure_probability(high, 80.0)
