"""Randomised property tests for the GF(2) linear-algebra invariants.

Each property is checked over ~100 seeded random matrices spanning tall,
wide, square, sparse and dense shapes — on both the reference and the
bit-packed implementations.
"""

import numpy as np
import pytest

from repro.exceptions import SingularMatrixError
from repro.gf2 import (
    GF2Matrix,
    GF2Vector,
    gf2_null_space,
    gf2_rank,
    gf2_rref,
    gf2_solve,
    packed_gf2_null_space,
    packed_gf2_rank,
    packed_gf2_rref,
    packed_gf2_solve,
)

#: 100 seeded random instances: (seed, rows, cols, density).
CASES = [
    (seed, int(rows), int(cols), density)
    for seed, (rows, cols, density) in enumerate(
        (
            rng_shape
            for rng_shape in (
                (
                    np.random.default_rng(1234 + i).integers(1, 24),
                    np.random.default_rng(5678 + i).integers(1, 90),
                    [0.1, 0.3, 0.5, 0.8][i % 4],
                )
                for i in range(100)
            )
        )
    )
]

IMPLEMENTATIONS = {
    "reference": (gf2_rref, gf2_rank, gf2_null_space, gf2_solve),
    "packed": (packed_gf2_rref, packed_gf2_rank, packed_gf2_null_space, packed_gf2_solve),
}


def _matrix(seed, rows, cols, density):
    rng = np.random.default_rng(seed)
    return GF2Matrix((rng.random((rows, cols)) < density).astype(np.uint8))


@pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
@pytest.mark.parametrize("seed,rows,cols,density", CASES)
class TestLinalgInvariants:
    def test_rank_is_rref_invariant(self, implementation, seed, rows, cols, density):
        rref_fn, rank_fn, _, _ = IMPLEMENTATIONS[implementation]
        matrix = _matrix(seed, rows, cols, density)
        rref, pivots = rref_fn(matrix)
        # rank(A) == rank(RREF(A)) == number of pivots
        assert rank_fn(matrix) == rank_fn(rref) == len(pivots)
        # RREF is idempotent.
        rref_again, pivots_again = rref_fn(rref)
        assert rref_again == rref
        assert pivots_again == pivots

    def test_rank_nullity_theorem(self, implementation, seed, rows, cols, density):
        _, rank_fn, null_space_fn, _ = IMPLEMENTATIONS[implementation]
        matrix = _matrix(seed, rows, cols, density)
        assert rank_fn(matrix) + len(null_space_fn(matrix)) == cols

    def test_null_space_vectors_are_annihilated(
        self, implementation, seed, rows, cols, density
    ):
        _, _, null_space_fn, _ = IMPLEMENTATIONS[implementation]
        matrix = _matrix(seed, rows, cols, density)
        for vector in null_space_fn(matrix):
            assert (matrix @ vector).is_zero()
            assert not vector.is_zero()

    def test_solve_round_trips(self, implementation, seed, rows, cols, density):
        _, _, _, solve_fn = IMPLEMENTATIONS[implementation]
        matrix = _matrix(seed, rows, cols, density)
        rng = np.random.default_rng(seed + 10_000)
        # Build a consistent system: rhs = A @ x0 for a random x0.
        x0 = GF2Vector(rng.integers(0, 2, size=cols))
        rhs = matrix @ x0
        solution = solve_fn(matrix, rhs)
        assert matrix @ solution == rhs

    def test_inconsistent_systems_raise(self, implementation, seed, rows, cols, density):
        _, rank_fn, _, solve_fn = IMPLEMENTATIONS[implementation]
        matrix = _matrix(seed, rows, cols, density)
        rank = rank_fn(matrix)
        if rank >= rows:
            pytest.skip("full row rank: every rhs is consistent")
        # A rhs outside the column space must be rejected.  Appending the rhs
        # as an extra column raises the rank exactly when it is inconsistent.
        rng = np.random.default_rng(seed + 20_000)
        for _ in range(20):
            rhs = GF2Vector(rng.integers(0, 2, size=rows))
            augmented = GF2Matrix(
                np.hstack([matrix.to_numpy(), rhs.to_numpy().reshape(-1, 1)])
            )
            if rank_fn(augmented) > rank:
                with pytest.raises(SingularMatrixError):
                    solve_fn(matrix, rhs)
                return
        pytest.skip("no inconsistent rhs found in 20 draws")
