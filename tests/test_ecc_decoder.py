"""Unit tests for syndrome decoding and outcome classification."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.gf2 import GF2Vector
from repro.ecc import (
    DecodeOutcome,
    SyndromeDecoder,
    classify_decode,
    example_7_4_code,
    hamming_code,
    random_hamming_code,
)
from repro.ecc.decoder import post_correction_error_positions
from repro.ecc.code import SystematicLinearCode


@pytest.fixture
def code_7_4():
    return example_7_4_code()


class TestSyndromeDecoder:
    def test_decode_clean_codeword(self, code_7_4):
        decoder = SyndromeDecoder(code_7_4)
        dataword = GF2Vector([1, 0, 1, 0])
        result = decoder.decode(code_7_4.encode(dataword))
        assert result.dataword == dataword
        assert result.corrected_position is None
        assert not result.correction_performed
        assert result.syndrome.is_zero()

    def test_decode_corrects_every_single_bit_error(self, code_7_4):
        decoder = SyndromeDecoder(code_7_4)
        dataword = GF2Vector([0, 1, 1, 1])
        codeword = code_7_4.encode(dataword)
        for position in range(7):
            result = decoder.decode(codeword.flip(position))
            assert result.dataword == dataword
            assert result.corrected_position == position
            assert result.correction_performed

    def test_decode_length_mismatch(self, code_7_4):
        decoder = SyndromeDecoder(code_7_4)
        with pytest.raises(DimensionError):
            decoder.decode(GF2Vector([1, 0, 1]))

    def test_decode_dataword_helper(self, code_7_4):
        decoder = SyndromeDecoder(code_7_4)
        dataword = GF2Vector([1, 1, 0, 0])
        assert decoder.decode_dataword(code_7_4.encode(dataword)) == dataword

    def test_decoder_exposes_code(self, code_7_4):
        assert SyndromeDecoder(code_7_4).code is code_7_4

    def test_double_error_causes_wrong_dataword(self, code_7_4):
        # A SEC code cannot correct two errors; the result must differ from
        # the transmitted dataword for at least one double-error pattern.
        decoder = SyndromeDecoder(code_7_4)
        dataword = GF2Vector([0, 0, 0, 0])
        codeword = code_7_4.encode(dataword)
        wrong = 0
        for first, second in itertools.combinations(range(7), 2):
            received = codeword.flip(first).flip(second)
            if decoder.decode_dataword(received) != dataword:
                wrong += 1
        assert wrong > 0


class TestClassifyDecode:
    def test_no_error(self, code_7_4):
        codeword = code_7_4.encode(GF2Vector([1, 0, 0, 1]))
        assert classify_decode(code_7_4, codeword, codeword) == DecodeOutcome.NO_ERROR

    def test_single_error_corrected(self, code_7_4):
        codeword = code_7_4.encode(GF2Vector([1, 0, 0, 1]))
        for position in range(7):
            outcome = classify_decode(code_7_4, codeword, codeword.flip(position))
            assert outcome == DecodeOutcome.CORRECTED

    def test_double_errors_are_uncorrectable(self, code_7_4):
        codeword = code_7_4.encode(GF2Vector([1, 1, 1, 1]))
        uncorrectable = {
            DecodeOutcome.SILENT_CORRUPTION,
            DecodeOutcome.PARTIAL_CORRECTION,
            DecodeOutcome.MISCORRECTION,
            DecodeOutcome.DETECTED_UNCORRECTABLE,
        }
        for first, second in itertools.combinations(range(7), 2):
            received = codeword.flip(first).flip(second)
            outcome = classify_decode(code_7_4, codeword, received)
            assert outcome in uncorrectable

    def test_miscorrection_exists_for_double_errors(self, code_7_4):
        # For a full-length Hamming code every double error triggers a
        # correction at some third position -> miscorrection whenever that
        # position is not one of the two errors.
        codeword = code_7_4.encode(GF2Vector([0, 0, 0, 0]))
        outcomes = {
            classify_decode(code_7_4, codeword, codeword.flip(a).flip(b))
            for a, b in itertools.combinations(range(7), 2)
        }
        assert DecodeOutcome.MISCORRECTION in outcomes

    def test_triple_error_silent_corruption_possible(self, code_7_4):
        # Flipping the support of a weight-3 codeword yields syndrome zero.
        codeword = code_7_4.encode(GF2Vector([0, 0, 0, 0]))
        weight_three = next(
            w for w in code_7_4.codewords() if w.weight == 3
        )
        received = codeword + weight_three
        outcome = classify_decode(code_7_4, codeword, received)
        assert outcome == DecodeOutcome.SILENT_CORRUPTION

    def test_detected_uncorrectable_for_shortened_code(self):
        # Shortened code: some double-error syndromes match no column.
        code = SystematicLinearCode.from_parity_columns([0b0011, 0b0101], 4)
        codeword = code.encode(GF2Vector([0, 0]))
        # Errors in the two parity bits corresponding to rows 2 and 3 give
        # syndrome 0b1100 which is not a column of H.
        received = codeword.flip(2 + 2).flip(2 + 3)
        assert (
            classify_decode(code, codeword, received)
            == DecodeOutcome.DETECTED_UNCORRECTABLE
        )

    def test_classify_length_mismatch(self, code_7_4):
        with pytest.raises(DimensionError):
            classify_decode(code_7_4, GF2Vector([1, 0]), GF2Vector([1, 0]))

    def test_partial_correction_counts_as_uncorrectable(self, code_7_4):
        # Find a double error whose syndrome points at one of the two errors.
        codeword = code_7_4.encode(GF2Vector([0, 0, 0, 0]))
        found_partial = False
        for first, second in itertools.combinations(range(7), 2):
            received = codeword.flip(first).flip(second)
            outcome = classify_decode(code_7_4, codeword, received)
            if outcome == DecodeOutcome.PARTIAL_CORRECTION:
                found_partial = True
                syndrome = code_7_4.syndrome(received)
                assert code_7_4.syndrome_to_position(syndrome) in {first, second}
        # The (7,4) full-length code has no partial corrections (every double
        # error points at a third column); assert we understand that.
        assert not found_partial


class TestPostCorrectionErrors:
    def test_no_errors_reports_empty(self, code_7_4):
        dataword = GF2Vector([1, 0, 1, 1])
        codeword = code_7_4.encode(dataword)
        assert post_correction_error_positions(code_7_4, dataword, codeword) == ()

    def test_miscorrection_reports_flipped_data_bit(self, code_7_4):
        dataword = GF2Vector([0, 0, 0, 0])
        codeword = code_7_4.encode(dataword)
        # Choose two parity-bit errors that miscorrect into a data bit.
        for first, second in itertools.combinations(range(4, 7), 2):
            received = codeword.flip(first).flip(second)
            syndrome = code_7_4.syndrome(received)
            target = code_7_4.syndrome_to_position(syndrome)
            if target is not None and target < 4:
                observed = post_correction_error_positions(
                    code_7_4, dataword, received
                )
                assert observed == (target,)
                return
        pytest.fail("expected at least one parity-parity miscorrection")

    def test_single_error_fully_corrected_everywhere(self):
        rng = np.random.default_rng(1)
        code = random_hamming_code(16, rng=rng)
        dataword = GF2Vector(rng.integers(0, 2, size=16))
        codeword = code.encode(dataword)
        for position in range(code.codeword_length):
            observed = post_correction_error_positions(
                code, dataword, codeword.flip(position)
            )
            assert observed == ()


class TestDecoderProperties:
    @given(
        st.integers(min_value=4, max_value=30),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_error_always_corrected(self, num_data_bits, seed):
        rng = np.random.default_rng(seed)
        code = random_hamming_code(num_data_bits, rng=rng)
        decoder = SyndromeDecoder(code)
        dataword = GF2Vector(rng.integers(0, 2, size=num_data_bits))
        codeword = code.encode(dataword)
        position = int(rng.integers(0, code.codeword_length))
        assert decoder.decode_dataword(codeword.flip(position)) == dataword

    @given(
        st.integers(min_value=4, max_value=30),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_decoder_output_is_always_a_codeword(self, num_data_bits, seed):
        rng = np.random.default_rng(seed)
        code = hamming_code(num_data_bits)
        decoder = SyndromeDecoder(code)
        received = GF2Vector(rng.integers(0, 2, size=code.codeword_length))
        result = decoder.decode(received)
        # After correction the syndrome is either zero (valid codeword) or a
        # syndrome that matches no column (only possible for shortened codes).
        final_syndrome = code.syndrome(result.corrected_codeword)
        assert (
            final_syndrome.is_zero()
            or code.syndrome_to_position(final_syndrome) is None
        )


class TestClassifyDecodeDegenerateBranches:
    """Shortened/degenerate branches that detection-aware families lean on."""

    def test_single_error_detected_for_duplicate_column_code(self):
        # A degenerate (non-SEC) code with a duplicated column: an error at
        # the *higher* duplicate is decoded towards the lower one, which is
        # not the erroneous bit -- classified as detected-uncorrectable
        # rather than CORRECTED.
        code = SystematicLinearCode.from_parity_columns([3, 3], 2)
        codeword = code.encode(GF2Vector([1, 1]))
        outcome = classify_decode(code, codeword, codeword.flip(1))
        assert outcome == DecodeOutcome.DETECTED_UNCORRECTABLE

    def test_single_error_detected_for_detect_only_code(self):
        from repro.ecc import get_family

        code = get_family("parity-detect").construct(6)
        codeword = code.encode(GF2Vector([1, 0, 1, 1, 0, 1]))
        for position in range(code.codeword_length):
            outcome = classify_decode(code, codeword, codeword.flip(position))
            assert outcome == DecodeOutcome.DETECTED_UNCORRECTABLE

    def test_zero_syndrome_multi_error_is_silent_corruption(self):
        from repro.ecc import get_family

        code = get_family("parity-detect").construct(6)
        codeword = code.encode(GF2Vector([1, 0, 1, 1, 0, 1]))
        # Two data-bit errors keep overall parity intact: zero syndrome.
        received = codeword.flip(0).flip(2)
        assert code.syndrome(received).is_zero()
        outcome = classify_decode(code, codeword, received)
        assert outcome == DecodeOutcome.SILENT_CORRUPTION

    def test_zero_syndrome_multi_error_silent_for_degenerate_code(self):
        code = SystematicLinearCode.from_parity_columns([3, 3], 2)
        codeword = code.encode(GF2Vector([0, 0]))
        # Errors at both duplicated columns XOR to the zero syndrome.
        received = codeword.flip(0).flip(1)
        assert code.syndrome(received).is_zero()
        outcome = classify_decode(code, codeword, received)
        assert outcome == DecodeOutcome.SILENT_CORRUPTION

    def test_decode_result_reports_due_sentinel(self):
        from repro.ecc import get_family

        code = get_family("parity-detect").construct(4)
        decoder = SyndromeDecoder(code)
        codeword = code.encode(GF2Vector([1, 1, 0, 0]))
        clean = decoder.decode(codeword)
        assert not clean.detected_uncorrectable
        due = decoder.decode(codeword.flip(2))
        assert due.detected_uncorrectable
        assert due.corrected_position is None
        assert due.dataword == codeword.flip(2)[0:4]

    def test_secded_double_error_sets_due_sentinel(self):
        from repro.ecc import get_family

        code = get_family("secded-extended-hamming").construct(8)
        decoder = SyndromeDecoder(code)
        codeword = code.encode(GF2Vector([1] * 8))
        single = decoder.decode(codeword.flip(3))
        assert single.corrected_position == 3
        assert not single.detected_uncorrectable
        double = decoder.decode(codeword.flip(3).flip(5))
        assert double.corrected_position is None
        assert double.detected_uncorrectable
