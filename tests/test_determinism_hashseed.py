"""Canonical serialisation must be byte-identical across PYTHONHASHSEED.

Hash randomisation reorders set/frozenset iteration and (pre-canonical)
dict key order between interpreter invocations.  These property tests run
the same serialisation work in subprocesses under different seeds and
require byte-identical output — the end-to-end invariant RPR101/RPR102
exist to protect.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Builds a profile through frozenset-pattern recording, a store record,
#: and a bench run document, then prints one canonical blob of all three.
_SCRIPT = """
import json
from repro.core import MiscorrectionProfile
from repro.core.patterns import ChargedPattern
from repro.store import ResultRecord, canonical_json, content_key
from repro.bench.schema import BenchRun, ConditionRecord, WorkloadRecord

profile = MiscorrectionProfile(8)
for bits in [("c", (7, 2, 5)), ("b", (1, 6)), ("a", (3, 0, 4))]:
    pattern = ChargedPattern(8, bits[1])
    profile.record(pattern, [p for p in range(8) if p not in bits[1]][:2])

config = {"scenario": "demo", "bits": sorted({"b", "a", "c"}), "seed": 7}
record = ResultRecord(
    key=content_key(config), config=config, result=profile.to_dict()
)

run = BenchRun(
    tier="smoke",
    environment={"usable_cpus": 2},
    workloads=[
        WorkloadRecord(
            workload="demo",
            params={"n": 3},
            conditions=[
                ConditionRecord(
                    condition="c1",
                    metrics={"speedup": 1.5},
                    oracles={"bit_identical": True},
                )
            ],
        )
    ],
)

print(canonical_json(profile.to_dict()))
print(record.to_json_line())
print(run.to_json())
"""


def _serialise_under_seed(seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_canonical_serialisation_is_hashseed_independent():
    outputs = {seed: _serialise_under_seed(seed) for seed in ("0", "1", "4242")}
    assert outputs["0"] == outputs["1"] == outputs["4242"]
    assert b"num_data_bits" in outputs["0"]  # the script really serialised


def test_lint_json_report_is_hashseed_independent(tmp_path):
    """`repro lint --json` over a violating file is itself byte-stable."""
    target = tmp_path / "violates.py"
    target.write_text(
        "import time\nnames = {'b', 'a'}\n"
        "out = [time.time() for n in names]\n",
        encoding="utf-8",
    )
    outputs = set()
    for seed in ("0", "7"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = SRC
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--json", str(target)],
            capture_output=True,
            env=env,
        )
        assert result.returncode == 1
        outputs.add(result.stdout)
    assert len(outputs) == 1
