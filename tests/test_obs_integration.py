"""End-to-end observability: traced sweeps stay deterministic, merges stay
schema-valid, and the instrumented subsystems actually report.

The load-bearing property: turning tracing on — even with a multi-process
worker pool — must not change a single byte of the campaign store, and the
merged trace must survive schema validation including span-parent
referential consistency across the worker merge.
"""

import json

import pytest

from repro.obs import TRACER, read_trace, validate_events
from repro.scenarios import SweepRunner, SweepSpec
from repro.store import CampaignStore


SWEEP = {
    "name": "obs-integration",
    "num_words": 300,
    "chunk_size": 128,
    "seeds": [0],
    "backends": ["packed"],
    "codes": [{"data_bits": 8}],
    "scenarios": [
        {"name": "uniform-random", "params": {"bit_error_rate": [0.005, 0.02]}},
        {"name": "burst", "params": {"burst_probability": 0.1, "burst_length": 3}},
    ],
}


@pytest.fixture(autouse=True)
def _disable_global_tracer():
    yield
    TRACER.disable()


def _run_traced_sweep(tmp_path, store_name, trace_name, jobs):
    trace_path = str(tmp_path / trace_name)
    TRACER.enable(sink_path=trace_path, meta={"test": store_name})
    try:
        spec = SweepSpec.from_dict(SWEEP)
        runner = SweepRunner(store=CampaignStore(tmp_path / store_name), jobs=jobs)
        report = runner.run(spec)
        TRACER.flush()
    finally:
        TRACER.disable()
    return report, trace_path


class TestTraceDeterminism:
    def test_traced_parallel_records_byte_identical_to_untraced_serial(
        self, tmp_path
    ):
        spec = SweepSpec.from_dict(SWEEP)
        SweepRunner(store=CampaignStore(tmp_path / "serial")).run(spec)
        report, _ = _run_traced_sweep(tmp_path, "parallel", "t.jsonl", jobs=4)
        assert report.simulated == spec.num_cells
        assert (tmp_path / "serial" / "records.jsonl").read_bytes() == (
            tmp_path / "parallel" / "records.jsonl"
        ).read_bytes()

    def test_merged_trace_is_schema_valid(self, tmp_path):
        _, trace_path = _run_traced_sweep(tmp_path, "camp", "t.jsonl", jobs=4)
        events = read_trace(trace_path)
        assert validate_events(events) == []

    def test_span_nesting_survives_worker_merge(self, tmp_path):
        _, trace_path = _run_traced_sweep(tmp_path, "camp", "t.jsonl", jobs=4)
        events = read_trace(trace_path)
        spans = {e["id"]: e for e in events if e["type"] == "span"}
        parent_pid = [e for e in events if e["type"] == "meta"][0]["pid"]
        worker_spans = [s for s in spans.values() if s["pid"] != parent_pid]
        assert worker_spans, "jobs=4 must produce worker-process spans"
        cell_ids = {
            s["id"] for s in spans.values() if s["name"] == "sweep.cell"
        }
        for span in worker_spans:
            # every worker span hangs off the merged tree: its root was
            # re-parented under the parent's per-cell span
            assert span["parent"] in spans
            if span["parent"] in cell_ids:
                continue
            assert spans[span["parent"]]["pid"] != parent_pid
        assert any(s["parent"] in cell_ids for s in worker_spans)

    def test_segment_files_are_cleaned_up(self, tmp_path):
        _, trace_path = _run_traced_sweep(tmp_path, "camp", "t.jsonl", jobs=4)
        segment_dir = tmp_path / "t.jsonl.segments"
        assert not segment_dir.exists() or not list(segment_dir.iterdir())


class TestCounters:
    def test_simulated_and_cache_hit_counters_match_cells(self, tmp_path):
        spec = SweepSpec.from_dict(SWEEP)
        _, first_trace = _run_traced_sweep(tmp_path, "camp", "first.jsonl", 4)
        counters = {
            e["name"]: e["value"]
            for e in read_trace(first_trace)
            if e["type"] == "counter"
        }
        assert counters["sweep.cells.simulated"] == spec.num_cells
        assert counters["store.appends"] == spec.num_cells
        assert counters["einsim.words_decoded"] > 0
        assert "sweep.cells.cache_hit" not in counters

        # Second run over the same store: pure cache, nothing simulated.
        _, second_trace = _run_traced_sweep(tmp_path, "camp", "second.jsonl", 4)
        counters = {
            e["name"]: e["value"]
            for e in read_trace(second_trace)
            if e["type"] == "counter"
        }
        assert counters["sweep.cells.cache_hit"] == spec.num_cells
        assert "sweep.cells.simulated" not in counters

    def test_solver_counters_flow_through_sat_solve(self):
        from repro.core import SatBeerSolver
        from repro.core.profile import MiscorrectionProfile
        from repro.scenarios import SweepRunner, make_beer_cell

        cell = make_beer_cell(vendor="B", data_bits=8, rounds_per_window=6)
        result = SweepRunner().run_cell(cell)
        profile = MiscorrectionProfile.from_dict(result["profile"])
        TRACER.enable()
        try:
            SatBeerSolver(8).solve(profile)
            counters = TRACER.counter_totals()
        finally:
            TRACER.disable()
        assert counters["sat.solve_calls"] >= 1
        assert counters["sat.propagations"] > 0

    def test_untraced_run_produces_no_trace_artifacts(self, tmp_path):
        spec = SweepSpec.from_dict(SWEEP)
        SweepRunner(store=CampaignStore(tmp_path / "camp"), jobs=2).run(spec)
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {"camp"}
        assert {p.name for p in (tmp_path / "camp").iterdir()} <= {
            "records.jsonl", "records.lock"
        }


class TestTracedCli:
    def test_einsim_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "einsim.jsonl"
        exit_code = main([
            "einsim", "--data-bits", "8", "--num-words", "1000",
            "--trace", str(trace_path),
        ])
        assert exit_code == 0
        events = read_trace(str(trace_path))
        assert validate_events(events) == []
        root = [e for e in events if e["type"] == "span"][-1]
        assert root["name"] == "cli.einsim"
        assert not TRACER.enabled  # the CLI wrapper disabled it again

    def test_trace_summary_and_validate_commands(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.jsonl"
        main(["einsim", "--data-bits", "8", "--num-words", "1000",
              "--trace", str(trace_path)])
        capsys.readouterr()
        assert main(["trace", "validate", str(trace_path)]) == 0
        assert "OK:" in capsys.readouterr().out
        assert main(["trace", "summary", str(trace_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["counters"]["einsim.words_decoded"] == 1000

    def test_trace_export_command(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.jsonl"
        main(["einsim", "--data-bits", "8", "--num-words", "1000",
              "--trace", str(trace_path)])
        capsys.readouterr()
        output = tmp_path / "chrome.json"
        assert main(["trace", "export", str(trace_path),
                     "--output", str(output)]) == 0
        document = json.loads(output.read_text())
        assert document["traceEvents"]

    def test_trace_validate_rejects_broken_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps(
            {"type": "counter", "name": "c", "value": 1, "pid": 1}
        ) + "\n")
        assert main(["trace", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
