"""Comparator gate logic on synthetic metric values (no timing involved).

The ISSUE-6 satellite: tolerance boundaries must be exact (a regression of
exactly ``rel_tol`` passes; ``rel_tol`` + ε fails), missing and new
conditions are handled asymmetrically (failure vs warning), and an
environment-fingerprint mismatch is downgraded to a warning.
"""

import pytest

from repro.bench.compare import compare_runs, metric_within_tolerance
from repro.bench.registry import MetricGate
from repro.bench.schema import (
    ORACLE_SKIPPED,
    BenchRun,
    ConditionRecord,
    WorkloadRecord,
)

ENV = {"python_version": "3.12.0", "platform_machine": "x86_64", "usable_cpus": 8}


def make_run(metrics, oracles=None, condition="packed", workload="wl", env=None,
             tier="quick"):
    return BenchRun(
        tier=tier,
        environment=dict(env if env is not None else ENV),
        workloads=[
            WorkloadRecord(
                workload=workload,
                params={"n": 1},
                conditions=[
                    ConditionRecord(
                        condition=condition,
                        metrics=dict(metrics),
                        oracles=dict(oracles or {}),
                    )
                ],
            )
        ],
    )


def gates(**kwargs):
    return {"wl": (MetricGate(metric="speedup", **kwargs),)}


def kinds(findings):
    return [finding.kind for finding in findings]


# -- tolerance boundary exactness ----------------------------------------------------
class TestToleranceBoundary:
    BASELINE = 10.0
    TOL = 0.25

    def gate(self, higher_is_better=True):
        return MetricGate(
            metric="speedup", rel_tol=self.TOL, higher_is_better=higher_is_better
        )

    def test_exactly_tolerance_passes_higher_is_better(self):
        # 10.0 * (1 - 0.25) = 7.5 — landing exactly on the boundary is a pass.
        assert metric_within_tolerance(7.5, self.BASELINE, self.gate())

    def test_epsilon_beyond_tolerance_fails_higher_is_better(self):
        boundary = self.BASELINE * (1.0 - self.TOL)
        just_below = boundary - boundary * 1e-12
        assert not metric_within_tolerance(just_below, self.BASELINE, self.gate())

    def test_exactly_tolerance_passes_lower_is_better(self):
        gate = self.gate(higher_is_better=False)
        assert metric_within_tolerance(12.5, self.BASELINE, gate)

    def test_epsilon_beyond_tolerance_fails_lower_is_better(self):
        gate = self.gate(higher_is_better=False)
        boundary = self.BASELINE * (1.0 + self.TOL)
        assert not metric_within_tolerance(boundary + boundary * 1e-12, self.BASELINE, gate)

    def test_improvement_always_passes(self):
        assert metric_within_tolerance(1000.0, self.BASELINE, self.gate())
        assert metric_within_tolerance(
            0.001, self.BASELINE, self.gate(higher_is_better=False)
        )

    def test_zero_tolerance_pins_exactly(self):
        up = MetricGate(metric="m", rel_tol=0.0, higher_is_better=True)
        down = MetricGate(metric="m", rel_tol=0.0, higher_is_better=False)
        assert metric_within_tolerance(42.0, 42.0, up)
        assert metric_within_tolerance(42.0, 42.0, down)
        assert not metric_within_tolerance(41.0, 42.0, up)
        assert not metric_within_tolerance(43.0, 42.0, down)

    @pytest.mark.parametrize("value,ok", [(7.5, True), (7.4999, False), (7.5001, True)])
    def test_report_marks_regressions(self, value, ok):
        run = make_run({"speedup": value})
        baseline = make_run({"speedup": self.BASELINE})
        report = compare_runs(run, baseline, gates=gates(rel_tol=self.TOL))
        assert report.ok is ok
        if not ok:
            assert kinds(report.failures) == ["metric-regression"]
        assert report.compared_metrics == 1


# -- missing / new structure ---------------------------------------------------------
class TestStructureDiffs:
    def test_missing_condition_fails(self):
        run = make_run({"speedup": 10.0}, condition="reference")
        baseline = BenchRun(
            tier="quick",
            environment=dict(ENV),
            workloads=[
                WorkloadRecord(
                    workload="wl",
                    params={},
                    conditions=[
                        ConditionRecord("reference", {"speedup": 10.0}, {}),
                        ConditionRecord("packed", {"speedup": 10.0}, {}),
                    ],
                )
            ],
        )
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.5))
        assert not report.ok
        assert "missing-condition" in kinds(report.failures)

    def test_new_condition_is_warning_not_failure(self):
        run = make_run({"speedup": 10.0}, condition="brand-new")
        baseline = BenchRun(tier="quick", environment=dict(ENV), workloads=[
            WorkloadRecord(workload="wl", params={}, conditions=[])
        ])
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.5))
        assert report.ok
        assert "new-condition" in kinds(report.warnings)

    def test_missing_workload_fails_unless_subset(self):
        run = BenchRun(tier="quick", environment=dict(ENV), workloads=[])
        baseline = make_run({"speedup": 10.0})
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.5))
        assert kinds(report.failures) == ["missing-workload"]
        subset = compare_runs(
            run, baseline, gates=gates(rel_tol=0.5), allow_subset=True
        )
        assert subset.ok

    def test_new_workload_is_warning(self):
        run = make_run({"speedup": 10.0})
        baseline = BenchRun(tier="quick", environment=dict(ENV), workloads=[])
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.5))
        assert report.ok
        assert "new-workload" in kinds(report.warnings)

    def test_missing_gated_metric_fails(self):
        run = make_run({"seconds": 1.0})
        baseline = make_run({"seconds": 1.0, "speedup": 10.0})
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.5))
        assert "missing-metric" in kinds(report.failures)

    def test_non_numeric_gated_metric_fails(self):
        run = make_run({"speedup": "fast"})
        baseline = make_run({"speedup": 10.0})
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.5))
        assert "metric-type" in kinds(report.failures)

    def test_gate_with_condition_filter_only_applies_there(self):
        gate_map = {
            "wl": (
                MetricGate(
                    metric="speedup",
                    rel_tol=0.0,
                    higher_is_better=True,
                    condition="packed",
                ),
            )
        }
        run = make_run({"speedup": 1.0}, condition="reference")
        baseline = make_run({"speedup": 10.0}, condition="reference")
        report = compare_runs(run, baseline, gates=gate_map)
        assert report.ok  # the only gate targets "packed", not "reference"
        assert report.compared_metrics == 0


# -- oracles -------------------------------------------------------------------------
class TestOracles:
    def test_oracle_violation_fails_even_without_baseline_oracle(self):
        run = make_run({}, oracles={"outputs_identical": False})
        baseline = make_run({}, oracles={})
        report = compare_runs(run, baseline, gates={})
        assert kinds(report.failures) == ["oracle-violation"]

    def test_missing_oracle_fails(self):
        run = make_run({}, oracles={})
        baseline = make_run({}, oracles={"outputs_identical": True})
        report = compare_runs(run, baseline, gates={})
        assert kinds(report.failures) == ["missing-oracle"]

    def test_skipped_oracle_is_warning(self):
        run = make_run({}, oracles={"speedup_floor": ORACLE_SKIPPED})
        baseline = make_run({}, oracles={"speedup_floor": True})
        report = compare_runs(run, baseline, gates={})
        assert report.ok
        assert "oracle-skipped" in kinds(report.warnings)

    def test_passing_oracles_counted(self):
        run = make_run({}, oracles={"a": True, "b": True})
        baseline = make_run({}, oracles={"a": True, "b": True})
        report = compare_runs(run, baseline, gates={})
        assert report.ok
        assert report.compared_oracles == 2


# -- environment / tier --------------------------------------------------------------
class TestEnvironment:
    def test_environment_mismatch_is_warning_only(self):
        other = dict(ENV, platform_machine="aarch64", usable_cpus=2)
        run = make_run({"speedup": 10.0}, env=other)
        baseline = make_run({"speedup": 10.0})
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.5))
        assert report.ok
        mismatches = [
            finding
            for finding in report.warnings
            if finding.kind == "environment-mismatch"
        ]
        assert {finding.metric for finding in mismatches} == {
            "platform_machine",
            "usable_cpus",
        }

    def test_tier_mismatch_is_warning(self):
        run = make_run({"speedup": 10.0}, tier="quick")
        baseline = make_run({"speedup": 10.0}, tier="full")
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.5))
        assert report.ok
        assert "tier-mismatch" in kinds(report.warnings)

    def test_identical_runs_clean(self):
        run = make_run({"speedup": 10.0}, oracles={"ok": True})
        baseline = make_run({"speedup": 10.0}, oracles={"ok": True})
        report = compare_runs(run, baseline, gates=gates(rel_tol=0.0))
        assert report.ok
        assert report.warnings == []
        assert report.summary().startswith("OK:")
        payload = report.to_dict()
        assert payload["ok"] and payload["failures"] == []
