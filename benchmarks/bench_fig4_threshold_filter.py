"""Benchmark: figure 4: threshold filtering separates susceptible from quiet bits.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``fig4-threshold-filter`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_fig4_threshold_filter.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload fig4-threshold-filter``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "fig4-threshold-filter"

test_bench_fig4_threshold_filter = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
