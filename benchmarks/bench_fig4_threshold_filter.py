"""Figure 4: per-bit miscorrection probability and the threshold filter.

Paper claim: aggregated over all 1-CHARGED patterns and swept refresh windows,
per-bit miscorrection probabilities separate cleanly into a (near-)zero group
and a clearly non-zero group, so a simple threshold filter removes transient
noise without discarding real miscorrections.
"""

import numpy as np
from _reporting import print_header, print_table

from repro.analysis import figure4_threshold_data


def test_figure4_threshold_filter(benchmark):
    data = benchmark.pedantic(
        figure4_threshold_data,
        kwargs=dict(
            num_data_bits=16,
            refresh_windows_s=(20.0, 30.0, 40.0, 50.0, 60.0),
            rounds_per_window=4,
            transient_fault_probability=2e-4,
            seed=1,
        ),
        rounds=1,
        iterations=1,
    )

    print_header("Figure 4 — per-bit miscorrection probability across refresh windows")
    susceptible = set(data["analytically_susceptible_bits"])
    print_table(
        ["bit", "min", "median", "max", "susceptible?"],
        [
            [
                bit,
                data["per_bit_min"][bit],
                data["per_bit_median"][bit],
                data["per_bit_max"][bit],
                "yes" if bit in susceptible else "no",
            ]
            for bit in range(len(data["per_bit_min"]))
        ],
    )
    print(f"\nSuggested threshold: {data['suggested_threshold']}")

    # Shape check: miscorrection-susceptible bits have higher medians than
    # non-susceptible bits (the two groups are separable).
    medians = np.array(data["per_bit_median"])
    non_susceptible = [b for b in range(len(medians)) if b not in susceptible]
    if susceptible and non_susceptible:
        assert medians[sorted(susceptible)].max() > medians[non_susceptible].max()
