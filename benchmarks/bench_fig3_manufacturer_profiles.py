"""Figure 3: 1-CHARGED error maps for one chip per manufacturer (A, B, C).

Paper claim: the three manufacturers' miscorrection profiles differ (they use
different ECC functions); chips from the same manufacturer and model produce
identical profiles; manufacturer A's map looks unstructured while B's and C's
show regular patterns.
"""

import numpy as np
from _reporting import print_header, print_table, sparkline

from repro.analysis import figure3_manufacturer_profile_data
from repro.dram import ChipGeometry


def test_figure3_manufacturer_error_maps(benchmark):
    data = benchmark.pedantic(
        figure3_manufacturer_profile_data,
        kwargs=dict(
            num_data_bits=16,
            geometry=ChipGeometry(32, 8),
            refresh_windows_s=(30.0, 45.0, 60.0),
            rounds_per_window=6,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    print_header("Figure 3 — per-bit error maps for 1-CHARGED patterns (A / B / C)")
    for vendor_name, vendor_data in data.items():
        matrix = vendor_data["error_count_matrix"]
        print(f"\nManufacturer {vendor_name} (rows = CHARGED-bit index, cols = bit index):")
        print_table(
            ["CHARGED bit", "observed error counts per bit (sparkline)"],
            [
                [pattern_index, sparkline(matrix[pattern_index].astype(float).tolist())]
                for pattern_index in range(matrix.shape[0])
            ],
        )

    # Shape checks: maps differ between manufacturers.
    flattened = {name: tuple(d["error_count_matrix"].flatten()) for name, d in data.items()}
    assert flattened["A"] != flattened["B"]
    assert flattened["B"] != flattened["C"]
    # The diagonal (errors in the CHARGED bit itself) is populated for every vendor.
    for vendor_data in data.values():
        matrix = vendor_data["error_count_matrix"]
        assert np.trace(matrix) > 0
