"""Benchmark: figure 3: per-manufacturer miscorrection maps from simulated campaigns.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``fig3-manufacturer-profiles`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_fig3_manufacturer_profiles.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload fig3-manufacturer-profiles``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "fig3-manufacturer-profiles"

test_bench_fig3_manufacturer_profiles = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
