"""Benchmark: section 5.3: end-to-end BEER recovery of each manufacturer's ECC function.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``sec53-end-to-end-recovery`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_sec53_end_to_end_recovery.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload sec53-end-to-end-recovery``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "sec53-end-to-end-recovery"

test_bench_sec53_end_to_end_recovery = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
