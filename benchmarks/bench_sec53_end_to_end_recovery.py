"""Section 5.3: end-to-end BEER recovery of each manufacturer's ECC function.

Paper claim: applying the full methodology (k-CHARGED patterns, refresh-window
sweep, threshold filter, SAT-style solve) to each manufacturer's chips yields
exactly one ECC function per manufacturer, and chips of the same model yield
the same function.
"""

from _reporting import print_header, print_table

from repro.core import BeerExperiment, ExperimentConfig
from repro.dram import ChipGeometry, DataRetentionModel, all_vendors
from repro.dram.retention import RetentionCalibration
from repro.ecc import codes_equivalent

FAST = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))
CONFIG = ExperimentConfig(
    pattern_weights=(1, 2),
    refresh_windows_s=(30.0, 45.0, 60.0),
    rounds_per_window=8,
    threshold=0.0,
    discover_cell_encoding=True,
    discovery_pause_s=60.0,
)


def run_campaigns():
    outcomes = []
    for vendor in all_vendors():
        for chip_seed in (0, 1):
            chip = vendor.make_chip(
                num_data_bits=8,
                geometry=ChipGeometry(32, 8),
                seed=chip_seed,
                retention_model=FAST,
            )
            result = BeerExperiment(chip, CONFIG).run(solve=True)
            outcomes.append(
                {
                    "vendor": vendor.name,
                    "chip_seed": chip_seed,
                    "solutions": result.solution.num_solutions,
                    "recovered_matches_ground_truth": any(
                        codes_equivalent(candidate, chip.code)
                        for candidate in result.solution.codes
                    ),
                    "recovered_code": result.solution.codes[0]
                    if result.solution.codes
                    else None,
                }
            )
    return outcomes


def test_section_5_3_end_to_end_recovery(benchmark):
    outcomes = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)

    print_header("Section 5.3 — end-to-end BEER recovery per manufacturer")
    print_table(
        ["vendor", "chip", "candidate functions", "matches ground truth"],
        [
            [o["vendor"], o["chip_seed"], o["solutions"], o["recovered_matches_ground_truth"]]
            for o in outcomes
        ],
    )

    # Shape checks: every campaign recovers exactly one function and it is the
    # chip's true function; chips of the same vendor agree with each other.
    assert all(o["solutions"] == 1 for o in outcomes)
    assert all(o["recovered_matches_ground_truth"] for o in outcomes)
    by_vendor = {}
    for outcome in outcomes:
        by_vendor.setdefault(outcome["vendor"], []).append(outcome["recovered_code"])
    for codes in by_vendor.values():
        assert codes_equivalent(codes[0], codes[1])
