"""Benchmark: fused Monte-Carlo decode pipeline vs reference and packed simulation.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``decoder-fused`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_decoder_fused.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload decoder-fused``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "decoder-fused"

test_bench_decoder_fused = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
