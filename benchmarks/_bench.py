"""Shared bootstrap for the thin benchmark declarations in this directory.

Each ``bench_*.py`` module is a one-line declaration over the unified
harness (:mod:`repro.bench`): it names a registered workload and gets a
pytest-collectable test plus a standalone ``__main__`` entry point.  This
helper makes ``src/`` importable for direct ``python benchmarks/...`` runs
(pytest runs get the same path from ``conftest.py``).
"""

from __future__ import annotations

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.testing import (  # noqa: F401  (re-exported; E402 is ignored per-file)
    bench_workload_test,
    standalone_main,
)
