"""Sweep executor benchmark: serial vs process-parallel cell execution.

The paper's evaluation is a large Monte-Carlo matrix (codes × error rates ×
patterns × seeds); ``SweepRunner(jobs=N)`` fans the cache-miss cells of such
a matrix out over a process pool while committing results in spec order, so
the campaign store stays byte-identical to a serial run.  This benchmark
runs the same multi-cell spec serially and with ``jobs=4`` into two fresh
stores and records both wall times plus the byte-level store comparison.

Acceptance: the stores must be byte-identical in every mode.  The >1.5x
wall-time floor is enforced only when the machine actually has >= 4 usable
CPUs and quick mode is off — process parallelism cannot beat a serial run
on fewer cores, and CI smoke runs use shrunken workloads.

Run either through pytest (``pytest benchmarks/bench_sweep.py
--benchmark-only``) or directly (``python benchmarks/bench_sweep.py
[--quick]``); the measured numbers go to ``BENCH_sweep_parallel.json`` at
the repository root.
"""

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_sweep.py` from anywhere
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _reporting import print_header, print_table

from repro.scenarios import SweepRunner, SweepSpec
from repro.store import CampaignStore

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

PARALLEL_JOBS = 4

#: Wall-time acceptance floor for the jobs=4 run, only meaningful with the
#: CPUs to back it; on narrower machines the benchmark still runs (and still
#: requires byte-identical stores) but records the speedup without gating.
SPEEDUP_FLOOR = 1.5

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep_parallel.json"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _sweep_payload(quick: bool) -> dict:
    """A multi-cell einsim spec: 8 error-rate points of one 32-bit code."""
    return {
        "name": "bench-parallel-sweep",
        "num_words": 6_000 if quick else 250_000,
        "chunk_size": 2_048 if quick else 16_384,
        "seeds": [0],
        "backends": ["packed"],
        "codes": [{"data_bits": 32}],
        "scenarios": [
            {
                "name": "uniform-random",
                "params": {
                    "bit_error_rate": [
                        0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
                    ]
                },
            }
        ],
    }


def _timed_run(spec: SweepSpec, directory: Path, jobs: int) -> float:
    store = CampaignStore(directory)
    start = time.perf_counter()
    report = SweepRunner(store=store, jobs=jobs).run(spec)
    elapsed = time.perf_counter() - start
    assert report.simulated == spec.num_cells, report.to_dict()
    return elapsed


def sweep_benchmark_data(quick: bool = False) -> dict:
    """Measure serial vs jobs=4 wall time for one multi-cell sweep spec."""
    spec = SweepSpec.from_dict(_sweep_payload(quick))
    workdir = Path(tempfile.mkdtemp(prefix="bench_sweep_"))
    try:
        serial_seconds = _timed_run(spec, workdir / "serial", jobs=1)
        parallel_seconds = _timed_run(spec, workdir / "parallel", jobs=PARALLEL_JOBS)
        serial_bytes = (workdir / "serial" / "records.jsonl").read_bytes()
        parallel_bytes = (workdir / "parallel" / "records.jsonl").read_bytes()
        return {
            "quick": quick,
            "available_cpus": _available_cpus(),
            "jobs": PARALLEL_JOBS,
            "num_cells": spec.num_cells,
            "num_words_per_cell": spec.cells[0].config()["num_words"],
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": serial_seconds / parallel_seconds
            if parallel_seconds > 0
            else float("inf"),
            "stores_byte_identical": serial_bytes == parallel_bytes,
            "store_bytes": len(serial_bytes),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _report(data: dict) -> None:
    print_header(
        "Sweep executor — serial vs process-parallel cell execution"
        + (" [quick mode]" if data["quick"] else "")
    )
    print_table(
        [
            "cells",
            "words/cell",
            "cpus",
            "serial (s)",
            f"jobs={data['jobs']} (s)",
            "speedup",
            "stores identical",
        ],
        [
            [
                data["num_cells"],
                data["num_words_per_cell"],
                data["available_cpus"],
                data["serial_seconds"],
                data["parallel_seconds"],
                data["speedup"],
                data["stores_byte_identical"],
            ]
        ],
    )


def _check(data: dict) -> None:
    # Correctness is non-negotiable in every mode.
    assert data["stores_byte_identical"], (
        "parallel sweep produced a store that differs from the serial run"
    )
    if not data["quick"] and data["available_cpus"] >= PARALLEL_JOBS:
        assert data["speedup"] >= SPEEDUP_FLOOR, (
            f"jobs={data['jobs']} only {data['speedup']:.2f}x faster "
            f"(floor {SPEEDUP_FLOOR}x on {data['available_cpus']} CPUs)"
        )


def test_parallel_sweep_speedup(benchmark):
    data = benchmark.pedantic(
        sweep_benchmark_data, kwargs=dict(quick=QUICK), rounds=1, iterations=1
    )
    _report(data)
    if not QUICK:
        # Quick (CI smoke) runs use shrunken workloads; only full-size runs
        # update the recorded perf trajectory.  The CI artifact comes from
        # the standalone `python benchmarks/bench_sweep.py --quick` step,
        # which always writes.
        RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
    _check(data)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrink the workload and skip the speedup floor "
                             "(CI smoke)")
    parser.add_argument("--output", default=str(RESULTS_PATH),
                        help="where to write the benchmark JSON")
    args = parser.parse_args(argv)

    data = sweep_benchmark_data(quick=QUICK or args.quick)
    _report(data)
    Path(args.output).write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    _check(data)
    return 0


if __name__ == "__main__":
    sys.exit(main())
