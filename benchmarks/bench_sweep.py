"""Benchmark: serial vs process-parallel sweep execution; campaign stores must stay byte-identical, CPU-starved speedup gates skip visibly.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``sweep-parallel`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_sweep.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload sweep-parallel``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "sweep-parallel"

test_bench_sweep_parallel = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
