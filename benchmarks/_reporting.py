"""Shared helpers for printing regenerated tables/figures from the benchmarks.

Every benchmark module reproduces one of the paper's tables or figures and
prints the resulting rows/series so that running

    pytest benchmarks/ --benchmark-only -s

both measures the cost of the underlying computation and emits the data
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_header(title: str) -> None:
    """Print a banner identifying which paper artefact follows."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_table(headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an ASCII table with aligned columns."""
    materialised: List[List[str]] = [[_format(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in materialised:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _format(cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e4):
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a coarse one-line bar chart of non-negative values."""
    if not values:
        return ""
    peak = max(values) or 1.0
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(int(value / peak * (len(blocks) - 1)), len(blocks) - 1)]
        for value in list(values)[:width]
    )
