"""Benchmark: table 2: the analytic miscorrection profile of the worked example.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``table2-miscorrection-profile`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_table2_miscorrection_profile.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload table2-miscorrection-profile``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "table2-miscorrection-profile"

test_bench_table2_miscorrection_profile = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
