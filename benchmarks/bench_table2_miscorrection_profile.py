"""Table 2: miscorrection profile of the Equation-1 (7,4) Hamming code.

Paper claim: under 1-CHARGED test patterns, only the pattern charging data
bit 0 can produce miscorrections (at data bits 1, 2 and 3); the other three
patterns cannot produce any miscorrection.
"""

from _reporting import print_header, print_table

from repro.analysis import table2_miscorrection_profile_data


def test_table2_miscorrection_profile(benchmark):
    rows = benchmark(table2_miscorrection_profile_data)

    print_header("Table 2 — miscorrection profile of the (7,4) example code")
    print_table(
        ["pattern id (CHARGED bit)", "bit 0", "bit 1", "bit 2", "bit 3"],
        [[row["pattern_id"], *row["row_cells"]] for row in rows],
    )

    by_pattern = {row["pattern_id"]: row["possible_miscorrections"] for row in rows}
    assert by_pattern[0] == [1, 2, 3]
    assert by_pattern[1] == [] and by_pattern[2] == [] and by_pattern[3] == []
