"""Section 5.1.2: discovering which bytes share an ECC dataword.

Paper claim: charging one cell/byte at a time and inducing uncorrectable
errors confines miscorrections to the same ECC word, revealing that each 32 B
region holds two byte-interleaved ECC datawords.
"""

from _reporting import print_header, print_table

from repro.core import discover_dataword_layout
from repro.core.layout_re import estimate_dataword_bits
from repro.dram import ChipGeometry, DataRetentionModel, SimulatedDramChip
from repro.dram.layout import ByteInterleavedWordLayout
from repro.dram.retention import RetentionCalibration
from repro.ecc import hamming_code

FAST = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.6))


def test_section_5_1_2_dataword_layout_discovery(benchmark):
    # A chip whose 4-byte regions interleave two 16-bit ECC words at byte
    # granularity (the scaled-down analogue of the paper's 32 B / two 16 B words).
    chip = SimulatedDramChip(
        hamming_code(16),
        ChipGeometry(16, 8),
        word_layout=ByteInterleavedWordLayout(dataword_bytes=2, words_per_region=2),
        retention_model=FAST,
        seed=4,
    )

    groups = benchmark.pedantic(
        discover_dataword_layout,
        args=(chip,),
        kwargs=dict(refresh_pause_s=95.0),
        rounds=1,
        iterations=1,
    )

    print_header("Section 5.1.2 — ECC dataword layout discovery")
    print_table(
        ["ECC word group", "byte offsets within region"],
        [[index, group] for index, group in enumerate(groups)],
    )
    print(f"\nEstimated dataword length: {estimate_dataword_bits(groups)} bits")

    # Shape check: discovered groups are the even and odd byte offsets
    # (byte-granularity interleaving), never a mix.
    multi_byte_groups = [set(group) for group in groups if len(group) > 1]
    assert multi_byte_groups, "expected at least one co-failure group"
    for group in multi_byte_groups:
        assert group in ({0, 2}, {1, 3})
