"""Benchmark: section 5.1.2: byte-interleaved dataword layout discovery.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``sec512-dataword-layout`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_sec512_dataword_layout.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload sec512-dataword-layout``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "sec512-dataword-layout"

test_bench_sec512_dataword_layout = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
