"""Benchmark: figure 1: pre-/post-correction error probability vs raw bit error rate.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``fig1-error-probability`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_fig1_error_probability.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload fig1-error-probability``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "fig1-error-probability"

test_bench_fig1_error_probability = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
