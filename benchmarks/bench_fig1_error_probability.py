"""Figure 1: per-bit post-correction error probability for different ECC functions.

Paper claim: with identical, uniformly distributed pre-correction errors
(RBER 1e-4), different on-die ECC functions of the same (n, k) produce
visibly different per-bit post-correction error distributions, while the
pre-correction distribution is flat.
"""

from _reporting import print_header, print_table, sparkline

from repro.analysis import figure1_error_probability_data


def test_figure1_per_bit_error_probability(benchmark):
    data = benchmark.pedantic(
        figure1_error_probability_data,
        kwargs=dict(
            num_data_bits=32,
            num_functions=3,
            bit_error_rate=1e-3,
            num_words=150_000,
            num_bootstrap=100,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    print_header(
        "Figure 1 — relative post-correction error probability per bit position"
    )
    rows = []
    flat = data["pre_correction_relative_probability"]
    rows.append(["pre-correction (uniform)", f"{min(flat):.4f}..{max(flat):.4f}", sparkline(flat)])
    for entry in data["post_correction"]:
        relative = entry["relative_error_probability"]
        rows.append(
            [
                f"ECC function {entry['function_index']}",
                f"{min(relative):.4f}..{max(relative):.4f}",
                sparkline(relative),
            ]
        )
    print_table(["series", "range", "per-bit shape (bits 0..31)"], rows)

    # Shape check: the three post-correction distributions are not identical.
    shapes = [tuple(e["relative_error_probability"]) for e in data["post_correction"]]
    assert len(set(shapes)) > 1
