"""Benchmark: figure 5: solution-count distributions / uniqueness across dataword lengths.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``fig5-uniqueness`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_fig5_uniqueness.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload fig5-uniqueness``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "fig5-uniqueness"

test_bench_fig5_uniqueness = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
