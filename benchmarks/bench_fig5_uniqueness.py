"""Figure 5: number of ECC functions consistent with each test-pattern set.

Paper claim: the {1,2}-CHARGED pattern set always identifies the ECC function
uniquely; individual 1-, 2-, or 3-CHARGED sets can leave multiple candidates
for shortened codes; full-length codes (k = 2^r - r - 1) are unique for every
pattern set.
"""

from _reporting import print_header, print_table

from repro.analysis import figure5_uniqueness_data

FULL_LENGTH_DATAWORDS = {4, 11, 26, 57, 120, 247}


def test_figure5_solution_counts(benchmark):
    data = benchmark.pedantic(
        figure5_uniqueness_data,
        kwargs=dict(
            dataword_lengths=(4, 6, 8, 11, 16),
            codes_per_length=3,
            max_solutions=25,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    print_header("Figure 5 — candidate ECC functions per test-pattern set")
    headers = ["dataword length"] + list(data["solution_counts"].keys())
    rows = []
    for num_data_bits in data["dataword_lengths"]:
        row = [num_data_bits]
        for set_name in data["solution_counts"]:
            stats = data["solution_counts"][set_name][num_data_bits]
            row.append(f"{stats['min']:.0f}/{stats['median']:.0f}/{stats['max']:.0f}")
        rows.append(row)
    print_table(headers, rows)
    print("\n(cells are min/median/max candidate counts over the sampled codes)")

    counts = data["solution_counts"]
    # {1,2}-CHARGED is always unique.
    for num_data_bits in data["dataword_lengths"]:
        assert counts["{1,2}-CHARGED"][num_data_bits]["max"] == 1.0
    # Full-length codes are unique even with 1-CHARGED alone.
    for num_data_bits in data["dataword_lengths"]:
        if num_data_bits in FULL_LENGTH_DATAWORDS:
            assert counts["1-CHARGED"][num_data_bits]["max"] == 1.0
