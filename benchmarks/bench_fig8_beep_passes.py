"""Figure 8: BEEP success rate for one vs two profiling passes.

Paper claim: BEEP's success rate (probability that every injected error-prone
cell is identified) is high across error counts, improves with a second pass,
and is higher for longer codewords.
"""

import numpy as np
from _reporting import print_header, print_table

from repro.analysis import figure8_beep_pass_data


def test_figure8_beep_success_vs_passes(benchmark):
    data = benchmark.pedantic(
        figure8_beep_pass_data,
        kwargs=dict(
            codeword_lengths=(31, 63, 127),
            error_counts=(2, 3, 4, 5),
            passes=(1, 2),
            codewords_per_point=16,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    print_header("Figure 8 — BEEP success rate, 1 vs 2 passes")
    print_table(
        ["codeword length", "errors injected", "1-pass success", "2-pass success"],
        [
            [
                length,
                errors,
                _rate(data, length, errors, 1),
                _rate(data, length, errors, 2),
            ]
            for length in (31, 63, 127)
            for errors in (2, 3, 4, 5)
        ],
    )

    rows = data["rows"]
    mean_by_passes = {
        p: np.mean([r["success_rate"] for r in rows if r["passes"] == p]) for p in (1, 2)
    }
    two_pass_by_length = {
        n: np.mean(
            [
                r["success_rate"]
                for r in rows
                if r["codeword_length"] == n and r["passes"] == 2
            ]
        )
        for n in (31, 127)
    }
    # Shape checks: a second pass helps on aggregate; with two passes the
    # longest codeword profiles at least as well as the shortest (up to the
    # Monte-Carlo noise of the small per-point sample); success is substantial.
    assert mean_by_passes[2] >= mean_by_passes[1] - 1e-9
    assert two_pass_by_length[127] >= two_pass_by_length[31] - 0.15
    assert mean_by_passes[2] >= 0.5


def _rate(data, length, errors, passes):
    for row in data["rows"]:
        if (
            row["codeword_length"] == length
            and row["errors_injected"] == errors
            and row["passes"] == passes
        ):
            return row["success_rate"]
    raise KeyError((length, errors, passes))
