"""Benchmark: figure 8: BEEP profiling passes needed vs dataword length.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``fig8-beep-passes`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_fig8_beep_passes.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload fig8-beep-passes``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "fig8-beep-passes"

test_bench_fig8_beep_passes = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
