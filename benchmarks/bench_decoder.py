"""Benchmark: reference vs packed bulk decode (corrected words + DUE masks) for every registered code family.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``decoder-families`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_decoder.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload decoder-families``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "decoder-families"

test_bench_decoder_families = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
