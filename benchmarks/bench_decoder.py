"""Bulk-decode benchmark across code families: reference vs packed backends.

The pluggable code-family architecture routes every family's decode —
including the "detect, don't flip" DUE entries of SEC-DED and the
detect-only families — through the same cached decode-action table in both
backends.  This benchmark measures ``bulk_decode_outcomes`` (corrected words
plus DUE masks) for a realistic batch per family with both backends and
gates on bit identity: for every family the packed fast path must return
arrays identical to the reference oracle.

Acceptance: bit identity for all families in every mode; the packed backend
must also beat the oracle by the speedup floor on the large SEC workload in
full-size runs (quick mode only sanity-checks it is not slower).

Run either through pytest (``pytest benchmarks/bench_decoder.py
--benchmark-only``) or directly (``python benchmarks/bench_decoder.py
[--quick]``); the measured numbers go to ``BENCH_decoder_families.json`` at
the repository root.
"""

import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_decoder.py` from anywhere
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from _reporting import print_header, print_table

from repro.ecc import get_family
from repro.einsim.engine import bulk_decode_outcomes

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Perf floor for the large sec-hamming workload; quick mode only checks the
#: packed path is not slower than the oracle.
SPEEDUP_FLOOR = 1.0 if QUICK else 3.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_decoder_families.json"


def _family_workloads(quick: bool):
    """(label, code, num_words) per family, sized for realistic ECC words."""
    k = 32 if quick else 128
    words = 2_000 if quick else 20_000
    return [
        ("sec-hamming", get_family("sec-hamming").construct(k), words),
        (
            "secded-extended-hamming",
            get_family("secded-extended-hamming").construct(k),
            words,
        ),
        ("parity-detect", get_family("parity-detect").construct(k), words),
        ("repetition-3x", get_family("repetition").construct(8), words),
        ("repetition-2x-detect", get_family("repetition").construct(8, 8), words),
    ]


def _time_decode(code, received, backend, repeats):
    bulk_decode_outcomes(code, received, backend)  # warm per-code caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        corrected, due = bulk_decode_outcomes(code, received, backend)
        best = min(best, time.perf_counter() - start)
    return best, corrected, due


def decoder_benchmark_data(quick: bool = False) -> dict:
    """Measure reference vs packed bulk decode (with DUE masks) per family."""
    rng = np.random.default_rng(0)
    repeats = 3 if quick else 5
    rows = []
    for label, code, num_words in _family_workloads(quick):
        received = rng.integers(
            0, 2, size=(num_words, code.codeword_length), dtype=np.uint8
        )
        ref_seconds, ref_corrected, ref_due = _time_decode(
            code, received, "reference", repeats
        )
        packed_seconds, packed_corrected, packed_due = _time_decode(
            code, received, "packed", repeats
        )
        rows.append(
            {
                "family": label,
                "codeword_length": code.codeword_length,
                "num_data_bits": code.num_data_bits,
                "detect_only": code.detect_only,
                "num_words": num_words,
                "due_words": int(ref_due.sum()),
                "reference_seconds": ref_seconds,
                "packed_seconds": packed_seconds,
                "speedup": ref_seconds / packed_seconds
                if packed_seconds > 0
                else float("inf"),
                "outputs_identical": bool(
                    np.array_equal(ref_corrected, packed_corrected)
                    and np.array_equal(ref_due, packed_due)
                ),
            }
        )
    return {"quick": quick, "rows": rows}


def _report(data: dict) -> None:
    print_header(
        "Decoder families — reference vs packed bulk_decode_outcomes"
        + (" [quick mode]" if data["quick"] else "")
    )
    print_table(
        [
            "family",
            "(n, k)",
            "words",
            "DUE words",
            "reference (s)",
            "packed (s)",
            "speedup",
            "bit-identical",
        ],
        [
            [
                row["family"],
                f"({row['codeword_length']}, {row['num_data_bits']})",
                row["num_words"],
                row["due_words"],
                row["reference_seconds"],
                row["packed_seconds"],
                row["speedup"],
                row["outputs_identical"],
            ]
            for row in data["rows"]
        ],
    )


def _check(data: dict) -> None:
    # The bit-identity gate is non-negotiable in every mode and every family.
    for row in data["rows"]:
        assert row["outputs_identical"], (
            f"packed decode diverged from the reference for {row['family']}"
        )
    # Detection-capable families must actually exercise the DUE path.
    due_families = {
        row["family"] for row in data["rows"] if row["due_words"] > 0
    }
    assert {"secded-extended-hamming", "parity-detect"} <= due_families, (
        f"expected DUE observations, got them only for {sorted(due_families)}"
    )
    sec = next(row for row in data["rows"] if row["family"] == "sec-hamming")
    assert sec["speedup"] >= SPEEDUP_FLOOR, (
        f"packed backend only {sec['speedup']:.2f}x faster on sec-hamming "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_decoder_family_backends(benchmark):
    data = benchmark.pedantic(
        decoder_benchmark_data, kwargs=dict(quick=QUICK), rounds=1, iterations=1
    )
    _report(data)
    if not QUICK:
        # Quick (CI smoke) runs use shrunken workloads; only full-size runs
        # update the recorded perf trajectory.  The CI artifact comes from
        # the standalone `python benchmarks/bench_decoder.py --quick` step,
        # which always writes.
        RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
    _check(data)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrink the workload and relax the speedup floor "
                             "(CI smoke)")
    parser.add_argument("--output", default=str(RESULTS_PATH),
                        help="where to write the benchmark JSON")
    args = parser.parse_args(argv)

    data = decoder_benchmark_data(quick=QUICK or args.quick)
    _report(data)
    Path(args.output).write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    _check(data)
    return 0


if __name__ == "__main__":
    sys.exit(main())
