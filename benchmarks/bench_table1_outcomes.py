"""Table 1: retention-error patterns, syndromes, and outcomes for one codeword.

Paper claim: for a codeword whose CHARGED cells are {2, 5, 6} under the
Equation-1 (7,4) Hamming code, the 2^3 possible retention-error patterns split
into one no-error case, three correctable single-error cases, and four
uncorrectable multi-error cases.
"""

from _reporting import print_header, print_table

from repro.analysis import table1_outcome_data


def test_table1_error_pattern_outcomes(benchmark):
    rows = benchmark(table1_outcome_data)

    print_header("Table 1 — possible data-retention error patterns and outcomes")
    print_table(
        ["error positions", "syndrome (s0 s1 s2)", "combination", "points to", "outcome"],
        [
            [
                str(row["error_positions"]),
                " ".join(str(bit) for bit in row["syndrome"]),
                " + ".join(row["syndrome_column_combination"]) or "0",
                str(row["syndrome_points_to"]),
                row["outcome"],
            ]
            for row in rows
        ],
    )

    outcomes = [row["outcome"] for row in rows]
    assert outcomes.count("no error") == 1
    assert outcomes.count("correctable") == 3
    assert outcomes.count("uncorrectable") == 4
