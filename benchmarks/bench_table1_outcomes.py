"""Benchmark: table 1: decode outcome taxonomy (correct / miscorrection / detected).

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``table1-outcomes`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_table1_outcomes.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload table1-outcomes``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "table1-outcomes"

test_bench_table1_outcomes = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
