"""GF(2) backend comparison: reference (uint8) vs packed (bit-packed) kernels.

Records the perf trajectory of the bit-packed fast path:

* the acceptance microbenchmark — 10k-word bulk decode of a (136, 128) SEC
  Hamming code — where the packed backend must be at least 5× faster than
  the reference oracle while producing bit-identical output;
* fig6-style solver-input generation (Monte-Carlo miscorrection profiles,
  the BEER solver's input) measured with both backends.

Running with ``REPRO_BENCH_QUICK=1`` shrinks the word counts and drops the
speedup floor to a sanity check so CI smoke jobs stay fast and robust to
noisy shared runners.  The measured numbers are written to
``BENCH_gf2_backends.json`` at the repository root.
"""

import json
import os
from pathlib import Path

from _reporting import print_header, print_table

from repro.analysis import gf2_backend_comparison_data

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Acceptance floor for the full-size microbenchmark; quick mode only checks
#: the packed path is not slower than the oracle.
SPEEDUP_FLOOR = 1.0 if QUICK else 5.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_gf2_backends.json"


def test_gf2_backend_comparison(benchmark):
    kwargs = dict(
        num_words=1_000 if QUICK else 10_000,
        num_data_bits=128,
        dataword_lengths=(8,) if QUICK else (8, 16, 32),
        words_per_pattern=200 if QUICK else 2_000,
        repeats=3 if QUICK else 5,
        seed=0,
    )
    data = benchmark.pedantic(
        gf2_backend_comparison_data, kwargs=kwargs, rounds=1, iterations=1
    )

    micro = data["bulk_decode"]
    print_header(
        "GF(2) backends — bulk_decode microbenchmark "
        f"({micro['num_words']} words, ({micro['codeword_length']}, "
        f"{micro['num_data_bits']}) code)"
    )
    print_table(
        ["backend", "seconds (best of repeats)", "speedup vs reference"],
        [
            ["reference", micro["reference_seconds"], 1.0],
            ["packed", micro["packed_seconds"], micro["speedup"]],
        ],
    )

    print_header("GF(2) backends — fig6-style solver-input generation")
    print_table(
        [
            "dataword length",
            "patterns",
            "words/pattern",
            "reference (s)",
            "packed (s)",
            "speedup",
            "profiles identical",
        ],
        [
            [
                row["dataword_length"],
                row["num_patterns"],
                row["words_per_pattern"],
                row["reference_seconds"],
                row["packed_seconds"],
                row["speedup"],
                row["profiles_identical"],
            ]
            for row in data["solver_input"]["rows"]
        ],
    )

    if not QUICK:
        # Quick (CI smoke) runs use shrunken workloads; only full-size runs
        # update the recorded perf trajectory.
        RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")

    # Correctness is non-negotiable in both modes.
    assert micro["outputs_identical"]
    assert all(row["profiles_identical"] for row in data["solver_input"]["rows"])
    # Perf acceptance: the packed backend must beat the oracle by the floor.
    assert micro["speedup"] >= SPEEDUP_FLOOR, (
        f"packed backend only {micro['speedup']:.2f}x faster "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
