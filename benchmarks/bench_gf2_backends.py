"""Benchmark: GF(2) linear-algebra backends: reference vs packed bulk decode and solver-input construction, with bit-identity oracles.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``gf2-backends`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_gf2_backends.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload gf2-backends``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "gf2-backends"

test_bench_gf2_backends = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
