"""Benchmark: figure 6: solver runtime scaling in the dataword length.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``fig6-solver-runtime`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_fig6_solver_runtime.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload fig6-solver-runtime``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "fig6-solver-runtime"

test_bench_fig6_solver_runtime = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
