"""Figure 6: BEER solver runtime and memory usage vs dataword length.

Paper claim: runtime and memory grow with the codeword length, and the
uniqueness check (exhaustive search) dominates total runtime, while merely
determining a consistent function is much faster.  Absolute values here are
far smaller than the paper's Z3 numbers because the specialised backend
exploits the closed-form constraint structure — the scaling shape is the
reproduced quantity.
"""

from _reporting import print_header, print_table

from repro.analysis import figure6_runtime_data


def test_figure6_runtime_and_memory(benchmark):
    data = benchmark.pedantic(
        figure6_runtime_data,
        kwargs=dict(dataword_lengths=(4, 8, 16, 32), codes_per_length=2, seed=0),
        rounds=1,
        iterations=1,
    )

    print_header("Figure 6 — BEER solver runtime and memory vs dataword length")
    print_table(
        [
            "dataword length",
            "parity bits",
            "determine function (s)",
            "check uniqueness (s)",
            "total (s)",
            "peak memory (MiB)",
        ],
        [
            [
                row["dataword_length"],
                row["num_parity_bits"],
                row["determine_function_seconds"],
                row["check_uniqueness_seconds"],
                row["total_seconds"],
                row["peak_memory_mib"],
            ]
            for row in data["rows"]
        ],
    )

    rows = data["rows"]
    # Shape checks: total runtime grows with code length, and the uniqueness
    # check costs at least as much as finding the first solution.
    assert rows[-1]["total_seconds"] >= rows[0]["total_seconds"]
    for row in rows:
        assert row["check_uniqueness_seconds"] >= 0.5 * row["determine_function_seconds"]
