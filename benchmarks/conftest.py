"""Pytest configuration for the benchmark suite.

Puts ``src/`` on ``sys.path`` so the ``repro.bench`` harness imports without
an installed package, mirroring ``PYTHONPATH=src`` for the main test suite.
Tier selection is environment-driven: ``REPRO_BENCH_TIER=smoke|quick|full``
(or the legacy ``REPRO_BENCH_QUICK=1``); pytest runs default to ``quick``.
"""

from __future__ import annotations

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
