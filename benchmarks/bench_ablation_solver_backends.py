"""Benchmark: ablation: specialised constraint-propagation solver vs CNF/CDCL SAT backend.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``ablation-solver-backends`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_ablation_solver_backends.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload ablation-solver-backends``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "ablation-solver-backends"

test_bench_ablation_solver_backends = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
