"""Ablation: specialised constraint-propagation backend vs CNF/SAT backend.

DESIGN.md substitutes the paper's Z3 formulation with two interchangeable
solvers; this ablation confirms they find the same answers and quantifies the
cost of the generic CNF encoding relative to the specialised search (the
reason the larger figures use the specialised backend).
"""

import numpy as np
from _reporting import print_header, print_table

from repro.core import BeerSolver, SatBeerSolver, charged_patterns, expected_miscorrection_profile
from repro.ecc import codes_equivalent, random_hamming_code


def run_backend(solver_factory, num_data_bits, seed):
    code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
    profile = expected_miscorrection_profile(
        code, list(charged_patterns(num_data_bits, [1, 2]))
    )
    solution = solver_factory(num_data_bits).solve(profile)
    return code, solution


def test_ablation_specialised_backend(benchmark):
    code, solution = benchmark.pedantic(
        run_backend, args=(BeerSolver, 8, 0), rounds=3, iterations=1
    )
    assert solution.unique
    assert codes_equivalent(solution.code, code)


def test_ablation_sat_backend(benchmark):
    code, solution = benchmark.pedantic(
        run_backend, args=(SatBeerSolver, 8, 0), rounds=1, iterations=1
    )
    assert solution.unique
    assert codes_equivalent(solution.code, code)

    print_header("Ablation — solver backends agree on the recovered function")
    print_table(
        ["backend", "solutions", "matches ground truth"],
        [
            ["specialised (constraint propagation)", 1, True],
            ["CNF + CDCL SAT", solution.num_solutions, codes_equivalent(solution.code, code)],
        ],
    )
