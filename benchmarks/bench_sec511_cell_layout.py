"""Section 5.1.1: discovering the true-/anti-cell layout of a chip.

Paper claim: writing data-0 and data-1 patterns and pausing refresh reveals
each row's cell encoding; manufacturers A and B use only true-cells while
manufacturer C alternates blocks of true- and anti-cell rows.
"""

from _reporting import print_header, print_table

from repro.core import discover_cell_types
from repro.dram import CellType, ChipGeometry, DataRetentionModel, VENDOR_A, VENDOR_C
from repro.dram.retention import RetentionCalibration

FAST = DataRetentionModel(RetentionCalibration(1.0, 0.02, 60.0, 0.5))


def test_section_5_1_1_cell_type_discovery(benchmark):
    chip_a = VENDOR_A.make_chip(
        num_data_bits=16, geometry=ChipGeometry(28, 8), seed=0, retention_model=FAST
    )
    chip_c = VENDOR_C.make_chip(
        num_data_bits=16, geometry=ChipGeometry(28, 8), seed=0, retention_model=FAST
    )

    classification_c = benchmark.pedantic(
        discover_cell_types, args=(chip_c,), kwargs=dict(refresh_pause_s=90.0),
        rounds=1, iterations=1,
    )
    classification_a = discover_cell_types(chip_a, refresh_pause_s=90.0)

    print_header("Section 5.1.1 — true-/anti-cell layout discovery")
    print_table(
        ["row", "vendor A", "vendor C", "vendor C ground truth"],
        [
            [
                row,
                classification_a[row].value,
                classification_c[row].value,
                VENDOR_C.cell_layout().cell_type_for_row(row).value,
            ]
            for row in range(chip_c.geometry.num_rows)
        ],
    )

    # Shape checks: vendor A is all true-cells; vendor C shows both types and
    # the discovered layout matches the ground-truth block structure.
    assert all(value is CellType.TRUE_CELL for value in classification_a.values())
    assert CellType.ANTI_CELL in classification_c.values()
    ground_truth = VENDOR_C.cell_layout()
    matches = sum(
        1
        for row, value in classification_c.items()
        if value is ground_truth.cell_type_for_row(row)
    )
    assert matches >= 0.9 * chip_c.geometry.num_rows
