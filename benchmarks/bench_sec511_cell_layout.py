"""Benchmark: section 5.1.1: true-/anti-cell layout discovery via retention tests.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``sec511-cell-layout`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_sec511_cell_layout.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload sec511-cell-layout``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "sec511-cell-layout"

test_bench_sec511_cell_layout = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
