"""Figure 9: BEEP success rate vs per-bit error probability.

Paper claim: BEEP remains effective when error-prone cells fail only
probabilistically, with success degrading as the per-bit failure probability
drops and longer codewords being more resilient.
"""

import numpy as np
from _reporting import print_header, print_table

from repro.analysis import figure9_beep_probability_data


def test_figure9_beep_success_vs_error_probability(benchmark):
    data = benchmark.pedantic(
        figure9_beep_probability_data,
        kwargs=dict(
            codeword_lengths=(31, 63, 127),
            error_counts=(3, 5),
            per_bit_probabilities=(1.0, 0.75, 0.5, 0.25),
            codewords_per_point=10,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    print_header("Figure 9 — BEEP success rate vs per-bit error probability")
    probabilities = (1.0, 0.75, 0.5, 0.25)
    print_table(
        ["codeword length", "errors injected"] + [f"P[error]={p}" for p in probabilities],
        [
            [length, errors]
            + [_rate(data, length, errors, probability) for probability in probabilities]
            for length in (31, 63, 127)
            for errors in (3, 5)
        ],
    )

    rows = data["rows"]
    mean_by_probability = {
        p: np.mean([r["success_rate"] for r in rows if r["per_bit_error_probability"] == p])
        for p in (1.0, 0.25)
    }
    mean_by_length = {
        n: np.mean([r["success_rate"] for r in rows if r["codeword_length"] == n])
        for n in (31, 127)
    }
    # Shape checks: deterministic failures are easiest; longer codewords help.
    assert mean_by_probability[1.0] >= mean_by_probability[0.25] - 1e-9
    assert mean_by_length[127] >= mean_by_length[31] - 1e-9


def _rate(data, length, errors, probability):
    for row in data["rows"]:
        if (
            row["codeword_length"] == length
            and row["errors_injected"] == errors
            and row["per_bit_error_probability"] == probability
        ):
            return row["success_rate"]
    raise KeyError((length, errors, probability))
