"""Benchmark: figure 9: BEEP localisation accuracy vs per-bit error probability.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``fig9-beep-error-probability`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_fig9_beep_error_probability.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload fig9-beep-error-probability``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "fig9-beep-error-probability"

test_bench_fig9_beep_error_probability = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
