"""Benchmark: section 6.3: analytical real-chip experiment runtime.

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``sec63-experiment-runtime`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_sec63_experiment_runtime.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload sec63-experiment-runtime``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "sec63-experiment-runtime"

test_bench_sec63_experiment_runtime = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
