"""Section 6.3: analytical experimental runtime of a real-chip BEER campaign.

Paper claim: runtime is dominated by the refresh pauses themselves; sweeping
2-22 minute windows costs ~4.2 hours per chip, and testing parallelises across
chips of the same model because they share one ECC function.
"""

from _reporting import print_header, print_table

from repro.analysis import ExperimentRuntimeModel


def test_section_6_3_experiment_runtime(benchmark):
    model = ExperimentRuntimeModel()
    windows = [60.0 * minutes for minutes in range(2, 23)]

    serial_seconds = benchmark(model.sweep_seconds, windows)

    print_header("Section 6.3 — analytical experiment runtime")
    rows = [["single chip, serial sweep (2..22 min)", serial_seconds / 3600.0]]
    for num_chips in (2, 4, 8, 21):
        parallel = model.parallel_sweep_seconds(windows, num_chips)
        rows.append([f"parallel across {num_chips} chips", parallel / 3600.0])
    print_table(["configuration", "wall-clock hours"], rows)

    # Shape checks: ~4.2 hours serial (paper's number), parallelism helps but
    # is bounded below by the longest single window (22 minutes).
    assert abs(serial_seconds / 3600.0 - 4.2) < 0.2
    fully_parallel = model.parallel_sweep_seconds(windows, 21)
    assert fully_parallel >= 22 * 60.0
    assert fully_parallel < serial_seconds
