"""SAT solver benchmark: incremental vs one-shot BEER model enumeration.

BEER's bottleneck is SAT-based enumeration of every ECC function consistent
with a miscorrection profile.  The historical enumeration constructed a fresh
CDCL solver (and copied the CNF) per model — quadratic re-propagation over
the whole enumeration.  This benchmark drives both paths of
:meth:`repro.core.SatBeerSolver.solve` on BEER profiles for k ∈ {8, 16, 32}:

* the **incremental** path: one persistent solver keeps learned clauses,
  watches, activities, and saved phases alive across blocking clauses;
* the **one-shot oracle**: the historical fresh-solver-per-model behaviour,
  kept as the differential reference.

Both paths must enumerate identical canonical code sets; the acceptance gate
requires the incremental path to be at least 3x faster on the k=16
full-enumeration case.  The k=32 case pins a few parity-check columns
(``known_columns`` — the partial-knowledge scenario) so the Python-level
oracle finishes in benchmark-friendly time while still exercising the
largest formulas.

Run either through pytest (``pytest benchmarks/bench_sat.py --benchmark-only``)
or directly (``python benchmarks/bench_sat.py [--quick]``); the measured
numbers go to ``BENCH_sat_solver.json`` at the repository root.  Quick mode
(``--quick`` / ``REPRO_BENCH_QUICK=1``) shrinks the workloads and relaxes the
speedup floor to a sanity check for CI smoke jobs.
"""

import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_sat.py` from anywhere
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from _reporting import print_header, print_table

from repro.core import SatBeerSolver, expected_miscorrection_profile, one_charged_patterns
from repro.ecc import random_hamming_code
from repro.ecc.codespace import canonical_form

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Acceptance floor on the k=16 case; quick mode only sanity-checks that the
#: incremental path is not slower than the oracle.
SPEEDUP_FLOOR = 1.0 if QUICK else 3.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sat_solver.json"

#: (num_data_bits, number of parity-check columns pinned via known_columns).
FULL_CASES = ((8, 0), (16, 0), (32, 4))
QUICK_CASES = ((8, 0), (16, 3))


def sat_solver_benchmark_data(quick: bool = False, seed: int = 0) -> dict:
    """Measure incremental vs one-shot enumeration on BEER profiles."""
    rows = []
    for num_data_bits, num_pinned in (QUICK_CASES if quick else FULL_CASES):
        code = random_hamming_code(num_data_bits, rng=np.random.default_rng(seed))
        profile = expected_miscorrection_profile(
            code, list(one_charged_patterns(num_data_bits))
        )
        pinned = {
            index: code.parity_column_ints[index] for index in range(num_pinned)
        }
        solver = SatBeerSolver(num_data_bits)

        start = time.perf_counter()
        incremental = solver.solve(profile, known_columns=pinned or None)
        incremental_seconds = time.perf_counter() - start

        start = time.perf_counter()
        one_shot = solver.solve(
            profile, known_columns=pinned or None, incremental=False
        )
        one_shot_seconds = time.perf_counter() - start

        identical = {canonical_form(c) for c in incremental.codes} == {
            canonical_form(c) for c in one_shot.codes
        }
        rows.append(
            {
                "num_data_bits": num_data_bits,
                "num_parity_bits": solver.num_parity_bits,
                "pinned_columns": num_pinned,
                "models_enumerated": incremental.nodes_visited,
                "canonical_codes": incremental.num_solutions,
                "incremental_seconds": incremental_seconds,
                "one_shot_seconds": one_shot_seconds,
                "speedup": one_shot_seconds / incremental_seconds
                if incremental_seconds > 0
                else float("inf"),
                "identical_canonical_sets": identical,
                "solver_stats": incremental.solver_stats,
            }
        )
    return {"quick": quick, "seed": seed, "rows": rows}


def _acceptance_row(data: dict) -> dict:
    return next(row for row in data["rows"] if row["num_data_bits"] == 16)


def _report(data: dict) -> None:
    print_header(
        "SAT solver — incremental vs one-shot BEER model enumeration"
        + (" [quick mode]" if data["quick"] else "")
    )
    print_table(
        [
            "k",
            "r",
            "pinned cols",
            "models",
            "codes",
            "one-shot (s)",
            "incremental (s)",
            "speedup",
            "identical sets",
        ],
        [
            [
                row["num_data_bits"],
                row["num_parity_bits"],
                row["pinned_columns"],
                row["models_enumerated"],
                row["canonical_codes"],
                row["one_shot_seconds"],
                row["incremental_seconds"],
                row["speedup"],
                row["identical_canonical_sets"],
            ]
            for row in data["rows"]
        ],
    )


def _check(data: dict) -> None:
    # Correctness is non-negotiable in both modes.
    for row in data["rows"]:
        assert row["identical_canonical_sets"], (
            f"incremental and one-shot enumerations diverged at "
            f"k={row['num_data_bits']}"
        )
    gate = _acceptance_row(data)
    assert gate["speedup"] >= SPEEDUP_FLOOR, (
        f"incremental path only {gate['speedup']:.2f}x faster at k=16 "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_sat_incremental_enumeration(benchmark):
    data = benchmark.pedantic(
        sat_solver_benchmark_data, kwargs=dict(quick=QUICK, seed=0), rounds=1, iterations=1
    )
    _report(data)
    if not QUICK:
        # Quick (CI smoke) runs use shrunken workloads; only full-size runs
        # update the recorded perf trajectory.
        RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
    _check(data)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrink workloads and relax the speedup floor (CI smoke)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=str(RESULTS_PATH),
                        help="where to write the benchmark JSON")
    args = parser.parse_args(argv)

    global QUICK, SPEEDUP_FLOOR
    if args.quick:
        QUICK = True
        SPEEDUP_FLOOR = 1.0

    data = sat_solver_benchmark_data(quick=QUICK, seed=args.seed)
    _report(data)
    Path(args.output).write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    _check(data)
    return 0


if __name__ == "__main__":
    sys.exit(main())
