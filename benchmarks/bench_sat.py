"""Benchmark: incremental vs one-shot SAT-based BEER model enumeration (persistent CDCL solver vs fresh-solver oracle).

Thin declaration over the unified harness — parameters, tiers, conditions,
metrics and oracles are defined by the ``sat-solver`` workload in
:mod:`repro.bench.workloads`.  Run standalone with
``python benchmarks/bench_sat.py [--quick | --tier smoke|quick|full]``,
or via ``repro bench run --workload sat-solver``.
"""

from _bench import bench_workload_test, standalone_main

WORKLOAD = "sat-solver"

test_bench_sat_solver = bench_workload_test(WORKLOAD)

if __name__ == "__main__":
    raise SystemExit(standalone_main(WORKLOAD))
